package trapstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
)

// Memory is an in-process trap set with a generation counter — the
// aggregation core of cmd/tsvd-trapd, and a zero-dependency shared store
// for in-process fleet simulation (internal/harness.RunFleet).
//
// The generation counter increments exactly when the pair set grows, so it
// doubles as an ETag: a shard that polls with the generation it last saw
// gets a cheap "unchanged" answer instead of the full snapshot.
type Memory struct {
	mu   sync.Mutex
	file trapfile.File
	gen  uint64
	instr
}

// NewMemory returns an empty store labeled with tool. tracer may be nil.
func NewMemory(tool string, tracer *trace.Tracer) *Memory {
	return &Memory{
		file:  trapfile.File{Version: trapfile.FormatVersion, Tool: tool},
		instr: newInstr(tracer, "mem:"+tool),
	}
}

// Snapshot returns a copy of the current merged set and its generation.
func (m *Memory) Snapshot() (trapfile.File, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.file
	f.Pairs = append([]trapfile.Pair(nil), m.file.Pairs...)
	return f, m.gen
}

// Generation returns the current generation without copying the set.
func (m *Memory) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// PairCount returns the current merged set size without copying it.
func (m *Memory) PairCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.file.Pairs)
}

// Seed replaces the set wholesale (daemon startup from a snapshot file).
// It bumps the generation when the seeded set is non-empty so pre-seed
// pollers refetch.
func (m *Memory) Seed(f trapfile.File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file = trapfile.Merge(trapfile.File{}, f)
	if len(m.file.Pairs) > 0 {
		m.gen++
	}
}

// merge folds f in and reports the new generation, how many pairs the union
// gained, and the post-merge set size (so callers can ack without taking a
// second snapshot). The generation moves only when the set actually grew.
func (m *Memory) merge(f trapfile.File) (gen uint64, added, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	before := len(m.file.Pairs)
	m.file = trapfile.Merge(m.file, f)
	total = len(m.file.Pairs)
	added = total - before
	if added > 0 {
		m.gen++
	}
	return m.gen, added, total
}

// Fetch implements TrapStore.
func (m *Memory) Fetch() (trapfile.File, error) {
	begin := time.Now()
	f, _ := m.Snapshot()
	m.fetched(time.Since(begin))
	return f, nil
}

// Publish implements TrapStore.
func (m *Memory) Publish(f trapfile.File) error {
	begin := time.Now()
	m.merge(f)
	m.published(time.Since(begin))
	return nil
}

// RegisterMetrics exports the in-process store's operation counters and
// latency histograms on reg (nil-safe) — what HTTPConfig.Metrics does for
// the HTTP client, for fleets simulated with a shared Memory.
func (m *Memory) RegisterMetrics(reg *metrics.Registry) { m.register(reg) }

// Totals implements TrapStore.
func (m *Memory) Totals() trace.StoreTotals { return m.totals() }

// Close implements TrapStore.
func (m *Memory) Close() error { return nil }

// --- HTTP wire schema (cmd/tsvd-trapd <-> HTTPStore) ---

// TrapsPath is the daemon's single resource: the merged trap set.
const TrapsPath = "/v1/traps"

// wireSnapshot is the GET body and the POST payload. Version is
// trapfile.FormatVersion — the daemon and its shards must agree on the pair
// encoding exactly as two consecutive local runs must; a mismatch is
// rejected, never coerced. Generation is server-assigned and ignored on
// POST.
type wireSnapshot struct {
	Version    int             `json:"version"`
	Tool       string          `json:"tool"`
	Generation uint64          `json:"generation"`
	Pairs      []trapfile.Pair `json:"pairs"`
}

// wireAck is the POST response: the post-merge generation and set size.
type wireAck struct {
	Generation uint64 `json:"generation"`
	Pairs      int    `json:"pairs"`
}

// wireError carries a machine-readable rejection.
type wireError struct {
	Error string `json:"error"`
}

// wireHealth is the GET /healthz body (documented in docs/DEPLOYMENT.md).
type wireHealth struct {
	Status        string  `json:"status"`
	Generation    uint64  `json:"generation"`
	Pairs         int     `json:"pairs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func etagOf(gen uint64) string { return `"g` + strconv.FormatUint(gen, 10) + `"` }

// maxTrapPayload bounds a POST /v1/traps body. The largest observed fleet
// trap sets are a few thousand pairs (tens of KB); 8 MiB leaves three
// orders of magnitude of headroom while keeping a misbehaving (or
// malicious) client from ballooning the daemon's heap.
const maxTrapPayload = 8 << 20

// HandlerOptions configure NewHandler. The zero value serves the store with
// no persistence hook, no logging and no metrics.
type HandlerOptions struct {
	// OnMerge, when non-nil, runs after every merge that grew the set (the
	// daemon persists its snapshot there).
	OnMerge func(trapfile.File, uint64)
	// Logf, when non-nil, receives one line per state-changing request.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, registers the daemon metric families
	// (tsvd_trapd_*) and serves the whole registry at GET /metrics in the
	// Prometheus text format.
	Metrics *metrics.Registry
}

// NewHandler serves m over HTTP:
//
//	GET  /v1/traps  → the merged snapshot; ETag is the generation, and a
//	                  matching If-None-Match yields 304 with no body, so
//	                  idle shards poll for the price of a header exchange.
//	POST /v1/traps  → merge the payload's pairs; replies with the new
//	                  generation. A foreign schema version is a 400; a body
//	                  over maxTrapPayload is a 413.
//	GET  /healthz   → liveness probe: JSON status, generation, pair count
//	                  and uptime.
//	GET  /metrics   → Prometheus exposition of opts.Metrics (absent when no
//	                  registry is configured).
func NewHandler(m *Memory, opts HandlerOptions) http.Handler {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := opts.Metrics
	start := time.Now()
	reg.GaugeFunc("tsvd_trapd_generation",
		"Trap-set generation (increments when the merged set grows).",
		func() float64 { return float64(m.Generation()) })
	reg.GaugeFunc("tsvd_trapd_pairs",
		"Pairs in the merged trap set.",
		func() float64 { return float64(m.PairCount()) })
	reg.GaugeFunc("tsvd_trapd_uptime_seconds",
		"Seconds since the handler was created.",
		func() float64 { return time.Since(start).Seconds() })
	merges := reg.Counter("tsvd_trapd_merges_total",
		"Accepted POST /v1/traps merges (including no-op merges).")
	mergedPairs := reg.Counter("tsvd_trapd_merged_pairs_total",
		"Pairs the merged set gained across all merges.")

	// instrument wraps an endpoint handler with a request counter and a
	// latency histogram. The counter increments at entry, so the scrape
	// serving a /metrics request reports that request itself — the
	// reconciliation contract counts requests received, not completed.
	latBounds := metrics.ExpBounds(int64(100*time.Microsecond), 2, 13) // 100µs..~400ms
	instrument := func(endpoint string, h http.HandlerFunc) http.HandlerFunc {
		lbl := metrics.Label{Name: "endpoint", Value: endpoint}
		reqs := reg.Counter("tsvd_trapd_requests_total",
			"HTTP requests received by endpoint.", lbl)
		lat := reg.Histogram("tsvd_trapd_request_seconds",
			"HTTP request handling latency by endpoint.", 1e-9, latBounds, lbl)
		return func(w http.ResponseWriter, r *http.Request) {
			reqs.Inc()
			begin := time.Now()
			h(w, r)
			lat.Observe(int64(time.Since(begin)))
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireHealth{
			Status:        "ok",
			Generation:    m.Generation(),
			Pairs:         m.PairCount(),
			UptimeSeconds: time.Since(start).Seconds(),
		})
	}))
	if reg != nil {
		mux.HandleFunc("GET /metrics", instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		}))
	}
	mux.HandleFunc("GET "+TrapsPath, instrument("traps_get", func(w http.ResponseWriter, r *http.Request) {
		f, gen := m.Snapshot()
		tag := etagOf(gen)
		w.Header().Set("ETag", tag)
		if r.Header.Get("If-None-Match") == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireSnapshot{
			Version: trapfile.FormatVersion, Tool: f.Tool, Generation: gen, Pairs: f.Pairs,
		})
	}))
	mux.HandleFunc("POST "+TrapsPath, instrument("traps_post", func(w http.ResponseWriter, r *http.Request) {
		var in wireSnapshot
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxTrapPayload)).Decode(&in); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				reject(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("payload exceeds %d bytes", tooBig.Limit))
				return
			}
			reject(w, http.StatusBadRequest, fmt.Sprintf("invalid payload: %v", err))
			return
		}
		if in.Version != trapfile.FormatVersion {
			reject(w, http.StatusBadRequest, fmt.Sprintf(
				"payload version %d, want %d", in.Version, trapfile.FormatVersion))
			return
		}
		gen, added, total := m.merge(trapfile.File{Version: trapfile.FormatVersion, Tool: in.Tool, Pairs: in.Pairs})
		merges.Inc()
		mergedPairs.Add(int64(added))
		if added > 0 && opts.OnMerge != nil {
			// The only path that needs the full set — a no-op merge never
			// pays for a snapshot copy.
			f, _ := m.Snapshot()
			opts.OnMerge(f, gen)
		}
		logf("merge from %s: +%d pairs (%d total, generation %d)", r.RemoteAddr, added, total, gen)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wireAck{Generation: gen, Pairs: total})
	}))
	return mux
}

// Handler is the pre-HandlerOptions constructor, kept for existing callers.
func Handler(m *Memory, onMerge func(trapfile.File, uint64), logf func(format string, args ...any)) http.Handler {
	return NewHandler(m, HandlerOptions{OnMerge: onMerge, Logf: logf})
}

func reject(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wireError{Error: msg})
}
