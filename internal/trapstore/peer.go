package trapstore

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trapfile"
)

// ReplicatorConfig wires a daemon's Memory to its peers for anti-entropy
// replication (cmd/tsvd-trapd's -peer flag).
type ReplicatorConfig struct {
	// Peers are the base URLs of the other daemons (e.g.
	// "http://127.0.0.1:8322"). The topology need not be complete: each
	// sync round both pulls from and pushes to every peer, so any connected
	// graph converges.
	Peers []string
	// Interval is the period between sync rounds for Start (default 2s).
	Interval time.Duration
	// HTTP is the client template for per-peer connections. Its Metrics
	// field is ignored — the unlabeled tsvd_store_* series admit at most
	// one client per registry; peer traffic is accounted by the
	// tsvd_trapd_peer_* counters instead.
	HTTP HTTPConfig
	// OnMerge, when non-nil, runs after every pull that grew the local set,
	// with the post-merge set and sync state — the same hook NewHandler
	// takes, so the daemon persists peer-learned pairs exactly as it
	// persists client-published ones.
	OnMerge func(trapfile.File, SyncState)
	// Logf, when non-nil, receives one line per effective sync (pairs moved
	// or errors encountered).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, registers the tsvd_trapd_peer_* counters.
	Metrics *metrics.Registry
}

// PeerSyncResult reports one peer's share of a sync round: the pairs the
// pull added locally, the pairs pushed to the peer, and any errors. The
// pair lists are exact (not counts) so test harnesses — the chaos driver's
// contract model in particular — can track replica state precisely.
type PeerSyncResult struct {
	// Peer is the peer's base URL as configured.
	Peer string
	// Pulled are the pairs the local set gained by merging the peer's
	// snapshot (empty when the peer had nothing new).
	Pulled []trapfile.Pair
	// Pushed are the pairs sent to and acked by the peer this round (empty
	// when nothing changed locally since the last acked push).
	Pushed []trapfile.Pair
	// PullErr and PushErr carry the round's failures; both nil on a clean
	// sync. An unreachable peer is a normal condition (ErrUnavailable) —
	// anti-entropy retries forever, that is the point.
	PullErr, PushErr error
}

// Replicator keeps one daemon's Memory converging with its peers by
// periodic pull+push anti-entropy. Pulls use the delta-capable HTTPStore
// client, so steady-state rounds against idle peers cost a 304 header
// exchange; pushes send only the pairs added since the peer last acked,
// falling back to the full set when the delta window was compacted.
//
// Because the trap set is a G-Set CRDT (trapfile.Merge is a commutative,
// idempotent, monotone union), replication needs no coordination: any
// connected topology converges to the union of all daemons' sets once
// partitions heal, regardless of sync order or repetition.
type Replicator struct {
	mem     *Memory
	cfg     ReplicatorConfig
	clients []*HTTPStore

	mu       sync.Mutex
	lastPush []SyncState // local state as of the last acked push, per peer
	havePush []bool

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	syncs, pulledPairs, pushedPairs, errors *metrics.Counter
}

// NewReplicator returns a replicator for mem against cfg.Peers. It does not
// start syncing: call Start for the periodic loop, or SyncOnce to drive
// rounds explicitly (tests and the chaos harness do the latter for
// determinism).
func NewReplicator(mem *Memory, cfg ReplicatorConfig) *Replicator {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hc := cfg.HTTP
	hc.Metrics = nil
	r := &Replicator{
		mem:      mem,
		cfg:      cfg,
		lastPush: make([]SyncState, len(cfg.Peers)),
		havePush: make([]bool, len(cfg.Peers)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		r.clients = append(r.clients, NewHTTPStore(p, hc))
	}
	reg := cfg.Metrics
	r.syncs = reg.Counter("tsvd_trapd_peer_syncs_total",
		"Completed anti-entropy sync rounds (all peers attempted).")
	r.pulledPairs = reg.Counter("tsvd_trapd_peer_pulled_pairs_total",
		"Pairs the local set gained from peer pulls.")
	r.pushedPairs = reg.Counter("tsvd_trapd_peer_pushed_pairs_total",
		"Pairs pushed to and acked by peers.")
	r.errors = reg.Counter("tsvd_trapd_peer_errors_total",
		"Failed peer pull or push attempts (unreachable peers retry next round).")
	return r
}

// Peers returns the configured peer URLs.
func (r *Replicator) Peers() []string { return append([]string(nil), r.cfg.Peers...) }

// SyncOnce runs one full anti-entropy round: for each peer, pull its
// snapshot (delta-sized when possible) and merge it locally, then push the
// local pairs added since that peer's last acked push (the full set on the
// first push or after delta-log compaction). Errors are per-peer and
// non-fatal — an unreachable peer simply stays behind until a later round.
func (r *Replicator) SyncOnce() []PeerSyncResult {
	results := make([]PeerSyncResult, len(r.clients))
	for i, c := range r.clients {
		res := PeerSyncResult{Peer: r.cfg.Peers[i]}

		// Pull: merge the peer's set into ours.
		if f, err := c.Fetch(); err != nil {
			res.PullErr = err
			r.errors.Inc()
		} else {
			st, added, _ := r.mem.merge(f)
			res.Pulled = added
			r.pulledPairs.Add(int64(len(added)))
			if len(added) > 0 {
				if r.cfg.OnMerge != nil {
					snap, _ := r.mem.Snapshot()
					r.cfg.OnMerge(snap, st)
				}
				r.cfg.Logf("peer sync %s: pulled %d pairs (generation %d)", res.Peer, len(added), st.Generation)
			}
		}

		// Push: send what we gained since the peer last acked us. The pull
		// above already folded the peer's own pairs into our delta window —
		// pushing them back is a no-op merge on the peer, which idempotence
		// makes harmless.
		r.mu.Lock()
		since, have := r.lastPush[i], r.havePush[i]
		r.mu.Unlock()
		var toPush []trapfile.Pair
		var cur SyncState
		full := false
		if have {
			var ok bool
			toPush, cur, ok = r.mem.Delta(since)
			if !ok { // compacted window or our own restart: resend everything
				full = true
			}
		} else {
			full = true
		}
		if full {
			var f trapfile.File
			f, cur = r.mem.SnapshotState()
			toPush = f.Pairs
		}
		if len(toPush) == 0 {
			// Nothing new; still advance the cursor so a compacted window
			// does not force a full resend forever.
			r.mu.Lock()
			r.lastPush[i], r.havePush[i] = cur, true
			r.mu.Unlock()
		} else {
			f := trapfile.File{Version: trapfile.FormatVersion, Tool: r.mem.Tool(), Pairs: toPush}
			if err := c.Publish(f); err != nil {
				res.PushErr = err
				r.errors.Inc()
			} else {
				res.Pushed = toPush
				r.pushedPairs.Add(int64(len(toPush)))
				r.mu.Lock()
				r.lastPush[i], r.havePush[i] = cur, true
				r.mu.Unlock()
				r.cfg.Logf("peer sync %s: pushed %d pairs", res.Peer, len(toPush))
			}
		}
		results[i] = res
	}
	r.syncs.Inc()
	return results
}

// Start launches the periodic sync loop. It returns immediately; Close
// stops the loop. Start must be called at most once.
func (r *Replicator) Start() {
	r.started = true
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.SyncOnce()
			}
		}
	}()
}

// Close stops the loop started by Start (waiting for any in-flight round to
// return), then closes the peer clients — aborting any request or backoff a
// sync is blocked in. Close is idempotent, and safe when only SyncOnce was
// ever used.
func (r *Replicator) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.started {
		<-r.done
	}
	for _, c := range r.clients {
		c.Close()
	}
	return nil
}
