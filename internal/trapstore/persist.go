package trapstore

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"

	"repro/internal/trapfile"
)

// persistedSnapshot is the on-disk daemon snapshot: the trap-file schema
// plus the sync state that produced it. The layout is a strict superset of
// trapfile.File, so trapfile.LoadFile still reads a daemon snapshot (it
// ignores the extra fields) and hand-written or pre-epoch snapshots load
// here with a zero SyncState.
type persistedSnapshot struct {
	Version    int             `json:"version"`
	Tool       string          `json:"tool"`
	Epoch      string          `json:"epoch,omitempty"` // hex, like the wire form
	Generation uint64          `json:"generation,omitempty"`
	Pairs      []trapfile.Pair `json:"pairs"`
}

// SnapshotPersister writes a daemon's merged trap set and sync state to one
// snapshot file with the crash-safety of trapfile.Save (temp file in the
// target directory, fsync, atomic rename — a process killed mid-save leaves
// the previous snapshot intact) plus the two properties the daemon's ack
// contract needs on top:
//
//   - Saves are serialized. Concurrent merge handlers may race to persist;
//     without a lock their temp-file renames could land in either order.
//   - Saves are generation-monotone within an epoch. A save carrying an
//     older generation than one already on disk under the same epoch is
//     skipped: the newer snapshot is a superset (the merged set is
//     grow-only within a daemon lifetime), so letting a slow, stale writer
//     win the rename would silently regress the file below a state the
//     daemon already acknowledged to a client. A save under a *different*
//     epoch is always accepted — generations from different boots are not
//     comparable, and the restarted daemon's restored generation is already
//     at or above the old epoch's high-water mark anyway (Memory.Restore).
//
// Persisting the generation is what keeps it monotone across restarts: the
// next boot restores it via Load + Memory.Restore instead of starting near
// zero, so no two daemon lifetimes ever ack the same generation number for
// different sets (the restart ETag-collision bug). The epoch is persisted
// for lineage — Load reports which boot wrote the snapshot — but is never
// reused as the live epoch: a kill-9 can land between a client-observed
// merge and its save, so only a fresh epoch per boot makes cached ETags
// from the previous lifetime safely stale.
type SnapshotPersister struct {
	mu      sync.Mutex
	path    string
	last    SyncState
	haveGen bool
}

// NewSnapshotPersister returns a persister for the snapshot file at path.
// The file need not exist yet.
func NewSnapshotPersister(path string) *SnapshotPersister {
	return &SnapshotPersister{path: path}
}

// Path returns the snapshot file path.
func (p *SnapshotPersister) Path() string { return p.path }

// Load reads the current snapshot and the sync state it was saved under —
// the daemon's startup seed for Memory.Restore. A missing file is an empty
// set with a zero state; unparseable contents wrap trapfile.ErrCorrupt, and
// the daemon refuses to start rather than silently replacing the fleet's
// aggregated pairs with an empty set.
func (p *SnapshotPersister) Load() (trapfile.File, SyncState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	empty := trapfile.File{Version: trapfile.FormatVersion}
	data, err := os.ReadFile(p.path)
	if err != nil {
		if os.IsNotExist(err) {
			return empty, SyncState{}, nil
		}
		return empty, SyncState{}, fmt.Errorf("trapstore: read snapshot %s: %w", p.path, err)
	}
	var snap persistedSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return empty, SyncState{}, fmt.Errorf("trapstore: parse snapshot %s: %w: %v", p.path, trapfile.ErrCorrupt, err)
	}
	if snap.Version != trapfile.FormatVersion {
		return empty, SyncState{}, fmt.Errorf("trapstore: snapshot %s has version %d, want %d: %w",
			p.path, snap.Version, trapfile.FormatVersion, trapfile.ErrCorrupt)
	}
	epoch, err := parseEpoch(snap.Epoch)
	if err != nil {
		return empty, SyncState{}, fmt.Errorf("trapstore: snapshot %s has epoch %q: %w: %v",
			p.path, snap.Epoch, trapfile.ErrCorrupt, err)
	}
	// Merge-with-empty normalizes the pairs exactly as trapfile.LoadFile
	// would (hand-edited snapshots must not smuggle in denormalized pairs).
	f := trapfile.Merge(trapfile.File{}, trapfile.File{Tool: snap.Tool, Pairs: snap.Pairs})
	return f, SyncState{Epoch: epoch, Generation: snap.Generation}, nil
}

// Save persists f, stamped with the sync state that produced it. Stale
// saves (st.Generation at or below the last persisted generation of the
// same epoch) return nil without touching the file: the bytes on disk
// already reflect a newer — and therefore superset — state.
func (p *SnapshotPersister) Save(f trapfile.File, st SyncState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveGen && st.Epoch == p.last.Epoch && st.Generation <= p.last.Generation {
		return nil
	}
	norm := trapfile.Merge(trapfile.File{}, f)
	var epochHex string
	if st.Epoch != 0 {
		epochHex = strconv.FormatUint(st.Epoch, 16)
	}
	data, err := json.MarshalIndent(persistedSnapshot{
		Version: trapfile.FormatVersion, Tool: norm.Tool,
		Epoch: epochHex, Generation: st.Generation, Pairs: norm.Pairs,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("trapstore: marshal snapshot: %w", err)
	}
	if err := trapfile.SaveBytes(p.path, append(data, '\n')); err != nil {
		return err
	}
	p.last, p.haveGen = st, true
	return nil
}
