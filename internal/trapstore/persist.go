package trapstore

import (
	"sync"

	"repro/internal/trapfile"
)

// SnapshotPersister writes a daemon's merged trap set to one snapshot file
// with the crash-safety of trapfile.Save (temp file in the target directory,
// fsync, atomic rename — a process killed mid-save leaves the previous
// snapshot intact) plus the two properties the daemon's ack contract needs
// on top:
//
//   - Saves are serialized. Concurrent merge handlers may race to persist;
//     without a lock their temp-file renames could land in either order.
//   - Saves are generation-monotone. A save carrying an older generation
//     than one already on disk is skipped: the newer snapshot is a superset
//     (the merged set is grow-only within a daemon lifetime), so letting a
//     slow, stale writer win the rename would silently regress the file
//     below a state the daemon already acknowledged to a client.
//
// One persister guards one file for one daemon lifetime. After a restart,
// create a fresh persister: the restarted daemon's generation counter starts
// over, and holding the old lifetime's high-water mark would make it skip
// every save.
type SnapshotPersister struct {
	mu      sync.Mutex
	path    string
	gen     uint64
	haveGen bool
}

// NewSnapshotPersister returns a persister for the snapshot file at path.
// The file need not exist yet.
func NewSnapshotPersister(path string) *SnapshotPersister {
	return &SnapshotPersister{path: path}
}

// Path returns the snapshot file path.
func (p *SnapshotPersister) Path() string { return p.path }

// Load reads the current snapshot — the daemon's startup seed. A missing
// file is an empty set; unparseable contents wrap trapfile.ErrCorrupt, and
// the daemon refuses to start rather than silently replacing the fleet's
// aggregated pairs with an empty set.
func (p *SnapshotPersister) Load() (trapfile.File, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return trapfile.LoadFile(p.path)
}

// Save persists f, stamped with the daemon generation that produced it.
// Stale saves (gen at or below the last persisted generation) return nil
// without touching the file: the bytes on disk already reflect a newer — and
// therefore superset — state.
func (p *SnapshotPersister) Save(f trapfile.File, gen uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveGen && gen <= p.gen {
		return nil
	}
	if err := trapfile.Save(p.path, f); err != nil {
		return err
	}
	p.gen, p.haveGen = gen, true
	return nil
}
