package trapstore

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trapfile"
)

// scrapeValues parses a registry's exposition into series-line → value.
func scrapeValues(t *testing.T, reg *metrics.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestHTTPFlakyServerCountersReconcile asserts the retry/304 observability
// satellite: a flaky daemon (one 503 burst, then healthy with working ETags)
// must leave the client's registry with exactly the retries and conditional
// hits the wire saw.
func TestHTTPFlakyServerCountersReconcile(t *testing.T) {
	m := NewMemory("TSVD", nil)
	inner := Handler(m, nil, nil)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The first two requests fail; everything after is healthy.
		if calls.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	s, slept := newTestClient(srv.URL, HTTPConfig{Attempts: 4, Metrics: reg})
	defer s.Close()

	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b")}); err != nil {
		t.Fatal(err) // rides through the 503 burst on retries
	}
	if got := fetchPairs(t, s); len(got) != 1 {
		t.Fatalf("fetch = %v", got)
	}
	if got := fetchPairs(t, s); len(got) != 1 { // unchanged set → 304
		t.Fatalf("cached fetch = %v", got)
	}

	got := scrapeValues(t, reg)
	for series, want := range map[string]float64{
		`tsvd_store_ops_total{op="publish"}`:                 1,
		`tsvd_store_ops_total{op="fetch"}`:                   2,
		`tsvd_store_ops_total{op="retry"}`:                   float64(len(*slept)),
		`tsvd_store_ops_total{op="not_modified"}`:            1,
		`tsvd_store_op_duration_seconds_count{op="publish"}`: 1,
		`tsvd_store_op_duration_seconds_count{op="fetch"}`:   2,
	} {
		if got[series] != want {
			t.Errorf("%s = %v, want %v", series, got[series], want)
		}
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want 2 (one per 503)", len(*slept))
	}
	// The registry-backed counters and Totals read the same atomics.
	tot := s.Totals()
	if tot.Fetches != 2 || tot.Publishes != 1 {
		t.Fatalf("totals diverged from registry: %+v", tot)
	}
}

// TestFallbackRegistersFallbackCounter: the composite's fallback transitions
// complete the ops family.
func TestFallbackRegistersFallbackCounter(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(Handler(m, nil, nil))

	reg := metrics.NewRegistry()
	client, _ := newTestClient(srv.URL, HTTPConfig{Attempts: 2, Timeout: time.Second, Metrics: reg})
	local := NewMemory("TSVD", nil)
	s := NewFallback(client, local, nil)
	s.RegisterMetrics(reg)
	defer s.Close()

	srv.Close() // daemon dead from the start
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b")}); err != nil {
		t.Fatal(err)
	}
	got := scrapeValues(t, reg)
	if got[`tsvd_store_ops_total{op="fallback"}`] != 1 {
		t.Fatalf("fallback series = %v, want 1", got[`tsvd_store_ops_total{op="fallback"}`])
	}
}

// TestHandlerRejectsOversizePayload is the MaxBytesReader satellite: a body
// past maxTrapPayload gets a 413 and merges nothing.
func TestHandlerRejectsOversizePayload(t *testing.T) {
	m := NewMemory("TSVD", nil)
	srv := httptest.NewServer(Handler(m, nil, nil))
	defer srv.Close()

	body := `{"version":1,"tool":"` + strings.Repeat("x", maxTrapPayload) + `"}`
	resp, err := http.Post(srv.URL+TrapsPath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize payload: got %s, want 413", resp.Status)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Error == "" {
		t.Fatalf("413 body not a wireError: %v (%+v)", err, we)
	}
	if f, _ := m.Snapshot(); len(f.Pairs) != 0 {
		t.Fatalf("oversize payload still merged: %v", f.Pairs)
	}
}

// TestHandlerHealthzJSON covers the enriched liveness probe: JSON body with
// Content-Type, carrying generation, pair count and uptime.
func TestHandlerHealthzJSON(t *testing.T) {
	m := NewMemory("TSVD", nil)
	m.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b", "c", "d")})
	srv := httptest.NewServer(Handler(m, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz Content-Type = %q", ct)
	}
	var h wireHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Generation != 1 || h.Pairs != 2 || h.UptimeSeconds < 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestHandlerNoSnapshotOnNoOpMerge: a merge that adds nothing must not run
// the persistence hook (which is where the snapshot copy happens).
func TestHandlerNoSnapshotOnNoOpMerge(t *testing.T) {
	m := NewMemory("TSVD", nil)
	var merges atomic.Int64
	srv := httptest.NewServer(Handler(m, func(trapfile.File, SyncState) { merges.Add(1) }, nil))
	defer srv.Close()

	s, _ := newTestClient(srv.URL, HTTPConfig{})
	defer s.Close()
	f := trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b")}
	if err := s.Publish(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(f); err != nil { // identical: no growth
		t.Fatal(err)
	}
	if merges.Load() != 1 {
		t.Fatalf("onMerge ran %d times, want 1 (no-op merge must not snapshot)", merges.Load())
	}
}

// TestHandlerMetricsEndpoint: GET /metrics serves the registry with the
// daemon families, and its own request is included in the counts.
func TestHandlerMetricsEndpoint(t *testing.T) {
	m := NewMemory("TSVD", nil)
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(NewHandler(m, HandlerOptions{Metrics: reg}))
	defer srv.Close()

	s, _ := newTestClient(srv.URL, HTTPConfig{})
	defer s.Close()
	if err := s.Publish(trapfile.File{Tool: "TSVD", Pairs: pairs("a", "b", "c", "d")}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var sb strings.Builder
	var buf [4096]byte
	for {
		n, err := resp.Body.Read(buf[:])
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"tsvd_trapd_generation 1",
		"tsvd_trapd_pairs 2",
		"tsvd_trapd_merges_total 1",
		"tsvd_trapd_merged_pairs_total 2",
		`tsvd_trapd_requests_total{endpoint="traps_post"} 1`,
		// Entry-increment semantics: the scrape reports itself.
		`tsvd_trapd_requests_total{endpoint="metrics"} 1`,
		`tsvd_trapd_request_seconds_count{endpoint="traps_post"} 1`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
