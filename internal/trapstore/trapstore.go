// Package trapstore shares TSVD's dangerous-pair set across test shards.
//
// The paper's biggest practical lever is seeding a run from pairs earlier
// runs discovered (§3.4.6): a seeded detector traps a dangerous pair on its
// very first occurrence instead of waiting to observe a near miss. A single
// local trap file realizes that across *consecutive* runs of one shard;
// this package generalizes it across *concurrent* shards of a fleet, so N
// CI shards stop rediscovering the same pairs independently.
//
// A TrapStore holds one merged trap set. Three implementations compose:
//
//   - FileStore — the local trap file, now with read-merge-write Publish.
//   - HTTPStore — a client for cmd/tsvd-trapd, the fleet aggregation
//     daemon, with per-request timeouts and bounded exponential backoff.
//   - Fallback — remote-primary/local-secondary: publishes land locally
//     first (a shard can never lose its own discoveries), fetches degrade
//     to the local file when the daemon is unreachable, and the run goes
//     on. Fleet mode is an accelerant, never a point of failure.
//
// All implementations speak trapfile.File and merge with trapfile.Merge, so
// every replica converges to the same canonical pair set regardless of
// publish order. Stores count their operations (Totals) and optionally emit
// internal/trace events (store_fetch, store_publish, store_fallback) so
// tsvd-trace-check can reconcile a traced run's store activity exactly.
package trapstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
)

// ErrUnavailable marks a store that could not be reached: every retry of a
// remote operation failed at the transport or with a server error. Callers
// distinguish it from data errors (trapfile.ErrCorrupt) with errors.Is —
// an unavailable store is degraded around, a corrupt payload is a bug.
var ErrUnavailable = errors.New("trapstore: unavailable")

// PlantedFault selects a deliberately planted bug for the chaos harness
// (internal/chaos, cmd/tsvd-chaos) to catch. The production value is
// FaultNone; arming any other value via PlantFault makes a store violate its
// own contract on purpose, proving the harness's invariant oracles actually
// detect contract breaches rather than vacuously passing.
type PlantedFault int32

const (
	// FaultNone is the production state: no planted bug.
	FaultNone PlantedFault = iota
	// FaultLoseLocalPublish makes Fallback.Publish skip the local store
	// whenever the remote primary accepts the pairs — inverting the
	// local-first durability order, so a shard's discoveries survive only as
	// long as the daemon does. This is exactly the pair-loss the Fallback
	// contract forbids; the chaos harness must catch it within 200 actions.
	FaultLoseLocalPublish
)

// plantedFault is process-global: the harness arms it around a whole chaos
// run, and stores consult it on every publish.
var plantedFault atomic.Int32

// PlantFault arms f (or disarms every fault when f is FaultNone). Test-only:
// nothing in production code calls it.
func PlantFault(f PlantedFault) { plantedFault.Store(int32(f)) }

// Planted returns the currently armed planted fault.
func Planted() PlantedFault { return PlantedFault(plantedFault.Load()) }

// TrapStore is one shared dangerous-pair set. Implementations must tolerate
// concurrent calls from multiple goroutines; Fetch and Publish are
// idempotent at the pair-set level (publishing twice merges twice into the
// same union).
type TrapStore interface {
	// Fetch returns the store's current merged trap set, normalized.
	Fetch() (trapfile.File, error)
	// Publish merges f's pairs into the store.
	Publish(f trapfile.File) error
	// Totals snapshots the store's operation accounting — successful
	// fetches and publishes, and primary→local fallbacks — the counters the
	// store_* trace events mirror.
	Totals() trace.StoreTotals
	// Close releases the store's resources. Close is idempotent; the store
	// must not be used afterwards.
	Close() error
}

// instr is the shared operation accounting + trace emission every store
// embeds. Events carry the store's interned endpoint key as their location,
// so a drained trace names which store served which operation.
type instr struct {
	tracer                        *trace.Tracer
	op                            ids.OpID
	start                         time.Time
	fetches, publishes, fallbacks atomic.Int64
	// notModified counts fetches served from the conditional-GET cache (the
	// daemon answered 304); retries counts extra attempts after a first
	// failure. deltaFetches counts successful fetches served as an O(delta)
	// incremental body rather than a full snapshot, and fetchBytes sums the
	// response body bytes of successful fetches (the wire-economy series —
	// delta sync exists to shrink it). All stay zero for stores without
	// those notions.
	notModified, retries, deltaFetches, fetchBytes atomic.Int64
	// fetchDur/publishDur are set by register; nil (no-op) without a
	// registry, so the accounting paths need no branches.
	fetchDur, publishDur *metrics.Histogram
}

func newInstr(tracer *trace.Tracer, endpoint string) instr {
	return instr{tracer: tracer, op: ids.InternKey("trapstore:" + endpoint), start: time.Now()}
}

// register exports the store's operation counters and per-op latency
// histograms on reg (docs/OBSERVABILITY.md, "Live metrics"). The counters
// are function-backed reads of the same atomics Totals snapshots, so the
// exported series reconcile exactly against the wire accounting —
// cmd/tsvd-metrics-check enforces this. reg may be nil (no-op). One registry
// should carry at most one store client: the series are unlabeled by store.
func (i *instr) register(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	const opsName = "tsvd_store_ops_total"
	const opsHelp = "Trap-store client operations by kind."
	load := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	for _, e := range []struct {
		op string
		c  *atomic.Int64
	}{
		{"fetch", &i.fetches},
		{"publish", &i.publishes},
		{"not_modified", &i.notModified},
		{"retry", &i.retries},
		{"delta", &i.deltaFetches},
	} {
		reg.CounterFunc(opsName, opsHelp, load(e.c), metrics.Label{Name: "op", Value: e.op})
	}
	reg.CounterFunc("tsvd_store_fetch_bytes_total",
		"Response body bytes of successful trap-store fetches (delta sync shrinks this).",
		load(&i.fetchBytes))
	const durName = "tsvd_store_op_duration_seconds"
	const durHelp = "Trap-store operation latency (successful operations)."
	bounds := metrics.ExpBounds(int64(500*time.Microsecond), 2, 13) // 500µs..~2s
	i.fetchDur = reg.Histogram(durName, durHelp, 1e-9, bounds, metrics.Label{Name: "op", Value: "fetch"})
	i.publishDur = reg.Histogram(durName, durHelp, 1e-9, bounds, metrics.Label{Name: "op", Value: "publish"})
}

func (i *instr) emit(kind trace.Kind, dur time.Duration) {
	i.tracer.Emit(kind, ids.CurrentThreadID(), 0, i.op, 0, time.Since(i.start), dur)
}

func (i *instr) fetched(dur time.Duration) {
	i.fetches.Add(1)
	i.fetchDur.Observe(int64(dur))
	i.emit(trace.KindStoreFetch, dur)
}

func (i *instr) published(dur time.Duration) {
	i.publishes.Add(1)
	i.publishDur.Observe(int64(dur))
	i.emit(trace.KindStorePublish, dur)
}

func (i *instr) fellBack() {
	i.fallbacks.Add(1)
	i.emit(trace.KindStoreFallback, 0)
}

func (i *instr) sawNotModified() { i.notModified.Add(1) }

func (i *instr) retried() { i.retries.Add(1) }

func (i *instr) sawDelta() { i.deltaFetches.Add(1) }

func (i *instr) countFetchBytes(n int) { i.fetchBytes.Add(int64(n)) }

// WireStats is a point-in-time view of a client's wire accounting, exposed
// for smoke tests and experiments that assert polls really are delta-sized.
type WireStats struct {
	// Fetches counts successful Fetch calls; DeltaFetches how many of those
	// were served as O(delta) incremental bodies; NotModified how many were
	// answered 304 from the conditional-GET cache.
	Fetches, DeltaFetches, NotModified int64
	// FetchBytes sums the response body bytes of successful fetches.
	FetchBytes int64
}

func (i *instr) wireStats() WireStats {
	return WireStats{
		Fetches:      i.fetches.Load(),
		DeltaFetches: i.deltaFetches.Load(),
		NotModified:  i.notModified.Load(),
		FetchBytes:   i.fetchBytes.Load(),
	}
}

func (i *instr) totals() trace.StoreTotals {
	return trace.StoreTotals{
		Fetches:   i.fetches.Load(),
		Publishes: i.publishes.Load(),
		Fallbacks: i.fallbacks.Load(),
	}
}

// FileStore is the local trap file as a TrapStore. Publish is
// read-merge-write under a process-local lock, so concurrent in-process
// publishers union rather than clobber; across processes the crash-safe
// rename in trapfile.Save keeps the file intact (last writer wins on truly
// simultaneous cross-process saves — shards use distinct local files).
type FileStore struct {
	path string
	mu   sync.Mutex
	instr
}

// NewFileStore returns a store backed by the trap file at path. The file
// need not exist yet. tracer may be nil (no events).
func NewFileStore(path string, tracer *trace.Tracer) *FileStore {
	return &FileStore{path: path, instr: newInstr(tracer, "file:"+path)}
}

// Path returns the backing trap-file path.
func (s *FileStore) Path() string { return s.path }

// Fetch implements TrapStore. A missing file is an empty set, not an error.
func (s *FileStore) Fetch() (trapfile.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	begin := time.Now()
	f, err := trapfile.LoadFile(s.path)
	if err != nil {
		return f, err
	}
	s.fetched(time.Since(begin))
	return f, nil
}

// Publish implements TrapStore: load, merge, atomically save.
func (s *FileStore) Publish(f trapfile.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	begin := time.Now()
	cur, err := trapfile.LoadFile(s.path)
	if err != nil {
		// A corrupt local file must not absorb (and thereby discard) a
		// run's discoveries; surface it instead of silently overwriting.
		return err
	}
	if err := trapfile.Save(s.path, trapfile.Merge(cur, f)); err != nil {
		return err
	}
	s.published(time.Since(begin))
	return nil
}

// Totals implements TrapStore.
func (s *FileStore) Totals() trace.StoreTotals { return s.totals() }

// Close implements TrapStore; the file needs no teardown.
func (s *FileStore) Close() error { return nil }

// Fallback composes a remote primary with a local secondary so fleet mode
// degrades instead of failing:
//
//   - Fetch merges both stores' sets when the primary answers; when the
//     primary is unreachable (ErrUnavailable) it serves the local set alone
//     and counts a fallback.
//   - Publish lands on the local store first — the shard's own discoveries
//     are durable before any network I/O — then best-efforts the primary;
//     an unreachable primary counts a fallback and is not an error.
//
// Data errors (a corrupt local file, a version-mismatched daemon) are not
// degraded around: they propagate.
type Fallback struct {
	primary, local TrapStore
	instr
}

// NewFallback wires primary (remote) over local. tracer may be nil; it only
// covers the fallback transitions — the sub-stores carry their own tracers.
func NewFallback(primary, local TrapStore, tracer *trace.Tracer) *Fallback {
	return &Fallback{primary: primary, local: local, instr: newInstr(tracer, "fallback")}
}

// RegisterMetrics exports the composite's fallback counter on reg,
// completing the tsvd_store_ops_total family a wrapped HTTPStore started
// (fallback transitions live here, not on the client). reg may be nil.
func (s *Fallback) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("tsvd_store_ops_total", "Trap-store client operations by kind.",
		func() float64 { return float64(s.fallbacks.Load()) },
		metrics.Label{Name: "op", Value: "fallback"})
}

// Fetch implements TrapStore.
func (s *Fallback) Fetch() (trapfile.File, error) {
	localFile, err := s.local.Fetch()
	if err != nil {
		return trapfile.File{Version: trapfile.FormatVersion}, err
	}
	remoteFile, err := s.primary.Fetch()
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			s.fellBack()
			return localFile, nil
		}
		return localFile, err
	}
	return trapfile.Merge(localFile, remoteFile), nil
}

// Publish implements TrapStore.
func (s *Fallback) Publish(f trapfile.File) error {
	if Planted() == FaultLoseLocalPublish {
		// Planted bug (see PlantedFault): remote-first, and on success the
		// local publish is skipped entirely — the discoveries are durable
		// only on the daemon, which the chaos harness is free to kill.
		if err := s.primary.Publish(f); err == nil {
			return nil
		}
	}
	if err := s.local.Publish(f); err != nil {
		return err
	}
	if err := s.primary.Publish(f); err != nil {
		if errors.Is(err, ErrUnavailable) {
			s.fellBack()
			return nil
		}
		return err
	}
	return nil
}

// Totals implements TrapStore: the sub-stores' successful operations plus
// this composite's fallbacks, matching the union of emitted events when all
// three share one tracer.
func (s *Fallback) Totals() trace.StoreTotals {
	p, l, own := s.primary.Totals(), s.local.Totals(), s.totals()
	return trace.StoreTotals{
		Fetches:   p.Fetches + l.Fetches,
		Publishes: p.Publishes + l.Publishes,
		Fallbacks: p.Fallbacks + l.Fallbacks + own.Fallbacks,
	}
}

// Close implements TrapStore, closing both sides.
func (s *Fallback) Close() error {
	return errors.Join(s.primary.Close(), s.local.Close())
}
