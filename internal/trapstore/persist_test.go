package trapstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/trapfile"
)

func pairsOf(t *testing.T, path string) []trapfile.Pair {
	t.Helper()
	f, err := trapfile.LoadFile(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return f.Pairs
}

// TestSnapshotPersisterCrashRecovery mirrors the trapfile kill-9 test for
// the daemon's snapshot path: a save killed between the temp-file write and
// the rename must leave the previous snapshot readable and intact.
func TestSnapshotPersisterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	p := NewSnapshotPersister(path)

	first := trapfile.File{Tool: "TSVD", Pairs: []trapfile.Pair{{A: "a.go:1", B: "b.go:2"}}}
	if err := p.Save(first, SyncState{Epoch: 7, Generation: 1}); err != nil {
		t.Fatalf("save gen 1: %v", err)
	}

	// Kill the process (simulated) at the most dangerous instant of the next
	// save: after the new temp file is durable, before the rename.
	trapfile.SetTestHookAfterWrite(func(string) error { return errors.New("killed") })
	second := trapfile.Merge(first, trapfile.File{Pairs: []trapfile.Pair{{A: "c.go:3", B: "d.go:4"}}})
	if err := p.Save(second, SyncState{Epoch: 7, Generation: 2}); err == nil {
		t.Fatal("save under the kill hook unexpectedly succeeded")
	}
	trapfile.SetTestHookAfterWrite(nil)

	// Recovery: the snapshot on disk is the previous generation, whole.
	got := pairsOf(t, path)
	if len(got) != 1 || got[0] != first.Pairs[0] {
		t.Fatalf("snapshot after crash = %v, want %v", got, first.Pairs)
	}
	// The killed save's temp debris is visible (a killed process cleans up
	// nothing) and does not confuse recovery.
	debris, err := filepath.Glob(filepath.Join(dir, "snapshot.json.tmp-*"))
	if err != nil || len(debris) == 0 {
		t.Fatalf("expected temp-file debris from the killed save, found %v (err %v)", debris, err)
	}

	// The retried save (same generation — the daemon's state did not move)
	// goes through: the failed attempt must not poison the monotonic guard.
	if err := p.Save(second, SyncState{Epoch: 7, Generation: 2}); err != nil {
		t.Fatalf("retried save gen 2: %v", err)
	}
	if got := pairsOf(t, path); len(got) != 2 {
		t.Fatalf("snapshot after retried save has %d pairs, want 2", len(got))
	}
}

// TestSnapshotPersisterMonotone asserts a stale save (older generation,
// smaller set) cannot regress the file below a newer persisted state.
func TestSnapshotPersisterMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	p := NewSnapshotPersister(path)

	newer := trapfile.File{Pairs: []trapfile.Pair{{A: "a.go:1", B: "b.go:2"}, {A: "c.go:3", B: "d.go:4"}}}
	older := trapfile.File{Pairs: newer.Pairs[:1]}
	if err := p.Save(newer, SyncState{Epoch: 7, Generation: 5}); err != nil {
		t.Fatalf("save gen 5: %v", err)
	}
	if err := p.Save(older, SyncState{Epoch: 7, Generation: 4}); err != nil {
		t.Fatalf("stale save gen 4: %v", err)
	}
	if got := pairsOf(t, path); len(got) != 2 {
		t.Fatalf("stale save regressed the snapshot to %d pairs, want 2", len(got))
	}
}

// TestSnapshotPersisterConcurrent hammers Save from many goroutines with
// growing sets and ascending generations; the surviving file must be the
// full union regardless of scheduling.
func TestSnapshotPersisterConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	p := NewSnapshotPersister(path)

	const n = 16
	cur := trapfile.File{}
	files := make([]trapfile.File, n)
	for i := range files {
		cur = trapfile.Merge(cur, trapfile.File{Pairs: []trapfile.Pair{
			{A: fmt.Sprintf("a.go:%d", i), B: fmt.Sprintf("b.go:%d", i)},
		}})
		files[i] = cur
	}
	var wg sync.WaitGroup
	for i := range files {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Save(files[i], SyncState{Epoch: 7, Generation: uint64(i + 1)}); err != nil {
				t.Errorf("save gen %d: %v", i+1, err)
			}
		}(i)
	}
	wg.Wait()
	if got := pairsOf(t, path); len(got) != n {
		t.Fatalf("snapshot has %d pairs after concurrent saves, want %d", len(got), n)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
}
