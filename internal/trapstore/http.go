package trapstore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/trapfile"
)

// HTTPConfig tunes an HTTPStore. The zero value selects the defaults below
// — shards in CI should rarely need anything else.
type HTTPConfig struct {
	// Timeout bounds each individual HTTP request (default 2s). A daemon
	// that hangs is indistinguishable from one that is down; the shard must
	// not stall its test run waiting.
	Timeout time.Duration
	// Attempts is the total number of tries per operation, first included
	// (default 4). Exhausting them yields an ErrUnavailable-wrapped error.
	Attempts int
	// BackoffBase is the pre-jitter delay before the first retry (default
	// 50ms); each further retry doubles it.
	BackoffBase time.Duration
	// BackoffMax caps the pre-jitter delay (default 1s), bounding the worst
	// case: an unreachable daemon costs at most
	// Attempts·Timeout + Σ backoff ≈ a few seconds per operation.
	BackoffMax time.Duration
	// Tracer receives store_fetch/store_publish events; nil disables.
	Tracer *trace.Tracer
	// Metrics, when non-nil, exports the client's operation counters and
	// latency histograms (the tsvd_store_* families; docs/OBSERVABILITY.md).
	// Register at most one store client per registry.
	Metrics *metrics.Registry
	// Transport, when non-nil, replaces the default HTTP transport. It is the
	// fault-injection seam the chaos harness (internal/chaos) uses to put a
	// slow, flaky, or 5xx-speaking network between a shard and its daemon
	// without a real proxy. Production callers leave it nil.
	Transport http.RoundTripper
	// PublishChunkBytes caps one POST body (default 8 MiB, matching the
	// daemon's payload cap). Publish splits a trap set whose JSON exceeds it
	// into multiple bounded POSTs — safe because merge is a commutative,
	// idempotent union, so N partial merges equal one big one. Tests lower
	// it to exercise chunking without megabyte payloads.
	PublishChunkBytes int
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.PublishChunkBytes <= 0 {
		c.PublishChunkBytes = defaultMaxTrapPayload
	}
	return c
}

// HTTPStore is the shard-side client of cmd/tsvd-trapd.
//
// Robustness contract: every operation has a per-request timeout, transient
// failures (transport errors, 5xx) retry with bounded exponential backoff
// plus jitter, and exhausted retries return an error wrapping
// ErrUnavailable — which Fallback turns into graceful degradation. Data
// errors (a daemon speaking another schema version) wrap
// trapfile.ErrCorrupt and are never retried: repeating a malformed exchange
// cannot fix it.
//
// Fetch is conditional and incremental: the store remembers the last
// snapshot's epoch-qualified sync state and sends both If-None-Match (an
// idle daemon answers 304 — a header exchange, no body) and ?since= (a
// grown daemon answers with only the pairs added since — O(delta), not
// O(pairs)). A daemon restart changes the epoch, so the cached state never
// false-matches across daemon lifetimes; the client transparently takes one
// full snapshot and resumes delta polling.
type HTTPStore struct {
	url string
	cfg HTTPConfig

	client *http.Client
	// ctx is canceled by Close: in-flight requests abort and backoff sleeps
	// return immediately, so no goroutine lingers in a retry loop past
	// daemon (or shard) shutdown.
	ctx    context.Context
	cancel context.CancelFunc
	// sleep is swapped by tests to observe the backoff schedule without
	// actually waiting; the default waits on the timer or on ctx, whichever
	// fires first, and reports ctx's error when the store was closed mid-wait.
	sleep func(time.Duration) error

	mu       sync.Mutex
	rng      *rand.Rand
	state    SyncState
	cached   trapfile.File
	hasCache bool

	instr
}

// NewHTTPStore returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8321"); the /v1/traps resource path is appended.
func NewHTTPStore(baseURL string, cfg HTTPConfig) *HTTPStore {
	cfg = cfg.withDefaults()
	base := strings.TrimSuffix(baseURL, "/")
	ctx, cancel := context.WithCancel(context.Background())
	s := &HTTPStore{
		url:    base + TrapsPath,
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		ctx:    ctx,
		cancel: cancel,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		instr:  newInstr(cfg.Tracer, base),
	}
	s.sleep = s.ctxSleep
	s.register(cfg.Metrics)
	return s
}

// ctxSleep waits d, or returns early with the context's error when Close
// cancels the store mid-backoff.
func (s *HTTPStore) ctxSleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// URL returns the traps resource URL this store talks to.
func (s *HTTPStore) URL() string { return s.url }

// backoffDelay returns the jittered delay before retry number retry (0 for
// the first retry). The pre-jitter delay is BackoffBase·2^retry capped at
// BackoffMax; jitter draws uniformly from [d/2, d), so concurrent shards
// that failed together do not retry in lockstep and the total schedule
// stays bounded.
func (s *HTTPStore) backoffDelay(retry int) time.Duration {
	d := s.cfg.BackoffBase << retry
	if d <= 0 || d > s.cfg.BackoffMax { // <<-overflow or past the cap
		d = s.cfg.BackoffMax
	}
	s.mu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d/2) + 1))
	s.mu.Unlock()
	return d/2 + j
}

// retry runs op up to cfg.Attempts times. op reports whether its failure is
// retryable; non-retryable errors surface immediately, exhausted attempts
// wrap ErrUnavailable. A store closed mid-backoff stops retrying promptly
// and reports ErrUnavailable — to its caller, a closed client and a dead
// daemon look the same.
func (s *HTTPStore) retry(name string, op func() (retryable bool, err error)) error {
	var last error
	for attempt := 0; attempt < s.cfg.Attempts; attempt++ {
		if attempt > 0 {
			s.retried()
			if err := s.sleep(s.backoffDelay(attempt - 1)); err != nil {
				return fmt.Errorf("trapstore: %s %s: store closed during retry backoff: %w (%v)",
					name, s.url, ErrUnavailable, err)
			}
		}
		retryable, err := op()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		last = err
	}
	return fmt.Errorf("trapstore: %s %s: %d attempts exhausted: %w (last error: %v)",
		name, s.url, s.cfg.Attempts, ErrUnavailable, last)
}

// do issues one request with the per-request timeout applied. The request
// context derives from the store's, so Close aborts in-flight requests too,
// not just backoff waits.
func (s *HTTPStore) do(method, url string, hdr map[string]string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	// Read the whole body under the same timeout so a daemon that hangs
	// mid-body cannot stall the shard either.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return resp, nil
}

// copyPairs returns f with its Pairs slice copied — the defensive copy
// every Fetch hands out. Returning the cache's slice by reference let a
// caller that appended to or reordered the result corrupt every later
// cached fetch (and, via ?since= deltas, every later incremental merge).
func copyPairs(f trapfile.File) trapfile.File {
	f.Pairs = append([]trapfile.Pair(nil), f.Pairs...)
	return f
}

// parseEpoch decodes a wire epoch (hex; "" means a pre-epoch daemon).
func parseEpoch(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// Fetch implements TrapStore. The returned File owns its Pairs slice:
// callers may mutate it freely without corrupting the client's cache.
func (s *HTTPStore) Fetch() (trapfile.File, error) {
	var out trapfile.File
	var wasDelta bool
	var bodyBytes int64
	begin := time.Now()
	err := s.retry("fetch", func() (bool, error) {
		hdr := map[string]string{}
		url := s.url
		s.mu.Lock()
		if s.hasCache {
			hdr["If-None-Match"] = etagOf(s.state)
			url += "?" + SinceParam + "=" + s.state.String()
		}
		s.mu.Unlock()

		resp, err := s.do(http.MethodGet, url, hdr, nil)
		if err != nil {
			return true, err
		}
		switch {
		case resp.StatusCode == http.StatusNotModified:
			s.sawNotModified()
			wasDelta, bodyBytes = false, 0
			s.mu.Lock()
			out = copyPairs(s.cached)
			s.mu.Unlock()
			return false, nil
		case resp.StatusCode == http.StatusOK:
			var snap wireSnapshot
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				return false, fmt.Errorf("trapstore: fetch %s: %w: %v", s.url, trapfile.ErrCorrupt, err)
			}
			if snap.Version != trapfile.FormatVersion {
				return false, fmt.Errorf("trapstore: fetch %s: server speaks version %d, want %d: %w",
					s.url, snap.Version, trapfile.FormatVersion, trapfile.ErrCorrupt)
			}
			epoch, err := parseEpoch(snap.Epoch)
			if err != nil {
				return false, fmt.Errorf("trapstore: fetch %s: bad epoch %q: %w", s.url, snap.Epoch, trapfile.ErrCorrupt)
			}
			st := SyncState{Epoch: epoch, Generation: snap.Generation}
			bodyBytes = resp.ContentLength
			if snap.Delta {
				// An incremental body applies on top of the cache it was
				// computed against. The daemon echoes the window (Since) and
				// epoch; anything out of line with our cache means the cache
				// cannot be trusted as the delta's base — drop it and retry
				// as a full fetch.
				s.mu.Lock()
				if !s.hasCache || s.state.Epoch != epoch || s.state.Generation != snap.Since {
					s.cached, s.state, s.hasCache = trapfile.File{}, SyncState{}, false
					s.mu.Unlock()
					return true, fmt.Errorf("trapstore: fetch %s: delta for window e%x-g%d does not match cache",
						s.url, epoch, snap.Since)
				}
				s.cached = trapfile.Merge(s.cached, trapfile.File{Tool: snap.Tool, Pairs: snap.Pairs})
				s.state = st
				out = copyPairs(s.cached)
				s.mu.Unlock()
				wasDelta = true
				return false, nil
			}
			f := trapfile.Merge(trapfile.File{}, trapfile.File{Tool: snap.Tool, Pairs: snap.Pairs})
			s.mu.Lock()
			s.cached, s.state, s.hasCache = f, st, true
			out = copyPairs(f)
			s.mu.Unlock()
			wasDelta = false
			return false, nil
		case resp.StatusCode >= 500:
			return true, fmt.Errorf("trapstore: fetch %s: server error %s", s.url, resp.Status)
		default:
			return false, fmt.Errorf("trapstore: fetch %s: %s (%s)", s.url, resp.Status, bodyExcerpt(resp))
		}
	})
	if err != nil {
		return trapfile.File{Version: trapfile.FormatVersion}, err
	}
	if wasDelta {
		s.sawDelta()
	}
	s.countFetchBytes(int(bodyBytes))
	s.fetched(time.Since(begin))
	return out, nil
}

// WireStats reports the client's wire accounting: how many fetches were
// full, delta-sized, or 304s, and the body bytes they cost.
func (s *HTTPStore) WireStats() WireStats { return s.wireStats() }

// marshalChunks encodes pairs into one or more POST bodies, each at most
// limit bytes, splitting recursively until every chunk fits. A single pair
// whose encoding alone exceeds the limit cannot be chunked and is an error.
func marshalChunks(tool string, pairs []trapfile.Pair, limit int) ([][]byte, error) {
	payload, err := json.Marshal(wireSnapshot{
		Version: trapfile.FormatVersion, Tool: tool, Pairs: pairs,
	})
	if err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	if len(payload) <= limit {
		return [][]byte{payload}, nil
	}
	if len(pairs) <= 1 {
		return nil, fmt.Errorf("payload of %d bytes exceeds the %d-byte chunk limit and cannot be split further", len(payload), limit)
	}
	mid := len(pairs) / 2
	left, err := marshalChunks(tool, pairs[:mid], limit)
	if err != nil {
		return nil, err
	}
	right, err := marshalChunks(tool, pairs[mid:], limit)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

// Publish implements TrapStore. A trap set whose JSON exceeds
// PublishChunkBytes is split into multiple bounded POSTs — the daemon's
// merge is a commutative, idempotent union, so N partial merges reach the
// same set as one big one, and a daemon-side payload cap (413) can no
// longer make a large set permanently unpublishable. One Publish counts as
// one logical operation in Totals regardless of chunk count.
func (s *HTTPStore) Publish(f trapfile.File) error {
	chunks, err := marshalChunks(f.Tool, f.Pairs, s.cfg.PublishChunkBytes)
	if err != nil {
		return fmt.Errorf("trapstore: publish %s: %w", s.url, err)
	}
	begin := time.Now()
	for _, payload := range chunks {
		err := s.retry("publish", func() (bool, error) {
			resp, err := s.do(http.MethodPost, s.url, map[string]string{"Content-Type": "application/json"}, payload)
			if err != nil {
				return true, err
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				return false, nil
			case resp.StatusCode >= 500:
				return true, fmt.Errorf("trapstore: publish %s: server error %s", s.url, resp.Status)
			case resp.StatusCode == http.StatusBadRequest:
				// The daemon rejected the payload itself (schema mismatch):
				// a data error, not an availability problem.
				return false, fmt.Errorf("trapstore: publish %s: rejected: %s: %w",
					s.url, bodyExcerpt(resp), trapfile.ErrCorrupt)
			case resp.StatusCode == http.StatusRequestEntityTooLarge:
				// The daemon's payload cap is below our chunk size — a
				// deployment misconfiguration. Retrying the same bytes cannot
				// help; the operator must align PublishChunkBytes with the
				// daemon's cap.
				return false, fmt.Errorf("trapstore: publish %s: %s — chunk of %d bytes exceeds the daemon's payload cap; lower PublishChunkBytes (%s)",
					s.url, resp.Status, len(payload), bodyExcerpt(resp))
			default:
				return false, fmt.Errorf("trapstore: publish %s: %s (%s)", s.url, resp.Status, bodyExcerpt(resp))
			}
		})
		if err != nil {
			return err
		}
	}
	s.published(time.Since(begin))
	return nil
}

// Totals implements TrapStore.
func (s *HTTPStore) Totals() trace.StoreTotals { return s.totals() }

// Close implements TrapStore: it cancels the store's context — aborting
// in-flight requests and waking any goroutine parked in a backoff sleep —
// then releases idle connections. Operations after Close fail with an
// ErrUnavailable-wrapped error. Close is idempotent.
func (s *HTTPStore) Close() error {
	s.cancel()
	s.client.CloseIdleConnections()
	return nil
}

// bodyExcerpt renders the first line of an error response for messages.
func bodyExcerpt(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) == 0 {
		return "empty body"
	}
	return string(data)
}
