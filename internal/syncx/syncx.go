// Package syncx provides monitored locks. Acquire/release events flow to
// the detector so the TSVDHB variant can thread vector clocks through
// critical sections; TSVD ignores the events entirely — the point of its
// design is not needing them, so programs may equally use plain sync.Mutex
// (which TSVDHB then cannot see, giving it the missed-edge behaviour the
// paper describes in §2.3).
package syncx

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
)

// Mutex is a mutual-exclusion lock whose acquire/release events are
// reported to a detector.
type Mutex struct {
	det core.Detector
	id  ids.ObjectID
	mu  sync.Mutex
}

// NewMutex returns a monitored mutex reporting to det (nil for none).
func NewMutex(det core.Detector) *Mutex {
	return &Mutex{det: det, id: ids.NewObjectID()}
}

// Lock acquires the mutex. The acquire event is published after the lock is
// held, so the thread's clock correctly absorbs the previous holder's
// release.
func (m *Mutex) Lock() {
	m.mu.Lock()
	if m.det != nil {
		m.det.OnLockAcquire(ids.CurrentThreadID(), m.id)
	}
}

// Unlock releases the mutex. The release event is published while the lock
// is still held, so the clock hand-off is ordered with the actual release.
func (m *Mutex) Unlock() {
	if m.det != nil {
		m.det.OnLockRelease(ids.CurrentThreadID(), m.id)
	}
	m.mu.Unlock()
}

// WithLock runs fn under the mutex.
func (m *Mutex) WithLock(fn func()) {
	m.Lock()
	defer m.Unlock()
	fn()
}

// RWMutex is a monitored reader/writer lock. For clock purposes read
// sections are treated like write sections (conservative: it may add HB
// edges between concurrent readers, which can only hide bugs, never
// fabricate one) — the same simplification production HB tools make for
// reader locks.
type RWMutex struct {
	det core.Detector
	id  ids.ObjectID
	mu  sync.RWMutex
}

// NewRWMutex returns a monitored RWMutex reporting to det (nil for none).
func NewRWMutex(det core.Detector) *RWMutex {
	return &RWMutex{det: det, id: ids.NewObjectID()}
}

// Lock acquires the write lock.
func (m *RWMutex) Lock() {
	m.mu.Lock()
	if m.det != nil {
		m.det.OnLockAcquire(ids.CurrentThreadID(), m.id)
	}
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	if m.det != nil {
		m.det.OnLockRelease(ids.CurrentThreadID(), m.id)
	}
	m.mu.Unlock()
}

// RLock acquires the read lock.
func (m *RWMutex) RLock() {
	m.mu.RLock()
	if m.det != nil {
		m.det.OnLockAcquire(ids.CurrentThreadID(), m.id)
	}
}

// RUnlock releases the read lock.
func (m *RWMutex) RUnlock() {
	if m.det != nil {
		m.det.OnLockRelease(ids.CurrentThreadID(), m.id)
	}
	m.mu.RUnlock()
}
