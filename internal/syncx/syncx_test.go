package syncx

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
)

type lockRecorder struct {
	core.NopDetector
	mu       sync.Mutex
	acquires []ids.ObjectID
	releases []ids.ObjectID
}

func (r *lockRecorder) OnLockAcquire(t ids.ThreadID, lock ids.ObjectID) {
	r.mu.Lock()
	r.acquires = append(r.acquires, lock)
	r.mu.Unlock()
}

func (r *lockRecorder) OnLockRelease(t ids.ThreadID, lock ids.ObjectID) {
	r.mu.Lock()
	r.releases = append(r.releases, lock)
	r.mu.Unlock()
}

func TestMutexMutualExclusion(t *testing.T) {
	m := NewMutex(nil)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (lock is broken)", counter)
	}
}

func TestMutexEventsReachDetector(t *testing.T) {
	rec := &lockRecorder{}
	m := NewMutex(rec)
	m.Lock()
	m.Unlock()
	m.WithLock(func() {})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.acquires) != 2 || len(rec.releases) != 2 {
		t.Fatalf("events = %d acquires, %d releases, want 2/2",
			len(rec.acquires), len(rec.releases))
	}
	if rec.acquires[0] != rec.releases[0] {
		t.Fatal("acquire/release lock ids differ")
	}
}

func TestDistinctMutexesDistinctIDs(t *testing.T) {
	rec := &lockRecorder{}
	a, b := NewMutex(rec), NewMutex(rec)
	a.Lock()
	a.Unlock()
	b.Lock()
	b.Unlock()
	if rec.acquires[0] == rec.acquires[1] {
		t.Fatal("two mutexes share an id")
	}
}

func TestRWMutex(t *testing.T) {
	rec := &lockRecorder{}
	m := NewRWMutex(rec)
	m.Lock()
	m.Unlock()
	m.RLock()
	m.RUnlock()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.acquires) != 2 || len(rec.releases) != 2 {
		t.Fatalf("events = %d/%d, want 2/2", len(rec.acquires), len(rec.releases))
	}
}

func TestRWMutexParallelReaders(t *testing.T) {
	m := NewRWMutex(nil)
	var wg sync.WaitGroup
	entered := make(chan struct{}, 2)
	proceed := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.RLock()
			entered <- struct{}{}
			// Both readers must be inside before either leaves.
			<-proceed
			m.RUnlock()
		}()
	}
	<-entered
	<-entered // would deadlock if readers excluded each other
	close(proceed)
	wg.Wait()
}
