package metrics

import (
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func wantLine(t *testing.T, out, line string) {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("exposition missing line %q:\n%s", line, out)
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations", Label{"op", "fetch"})
	g := r.Gauge("test_depth", "queue depth")
	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(-2)

	out := scrape(t, r)
	wantLine(t, out, "# HELP test_ops_total operations")
	wantLine(t, out, "# TYPE test_ops_total counter")
	wantLine(t, out, `test_ops_total{op="fetch"} 42`)
	wantLine(t, out, "# TYPE test_depth gauge")
	wantLine(t, out, "test_depth 5")
	if c.Value() != 42 || g.Value() != 5 {
		t.Fatalf("Value: counter %d gauge %d", c.Value(), g.Value())
	}
}

func TestFuncSeriesReadAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.CounterFunc("test_live_total", "live view", func() float64 { return float64(v) })
	v = 10
	wantLine(t, scrape(t, r), "test_live_total 10")
	v = 11
	wantLine(t, scrape(t, r), "test_live_total 11")
}

func TestSharedFamilyGroupsSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "ops", Label{"op", "a"}).Add(1)
	r.Counter("test_ops_total", "ops", Label{"op", "b"}).Add(2)
	out := scrape(t, r)
	if n := strings.Count(out, "# TYPE test_ops_total counter"); n != 1 {
		t.Fatalf("family emitted %d TYPE lines, want 1:\n%s", n, out)
	}
	wantLine(t, out, `test_ops_total{op="a"} 1`)
	wantLine(t, out, `test_ops_total{op="b"} 2`)
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	// Bounds in "nanoseconds", exposed as seconds.
	h := r.Histogram("test_lat_seconds", "latency", 1e-9, []int64{1000, 2000, 4000})
	h.Observe(500)  // ≤1000
	h.Observe(1000) // ≤1000 (upper bound inclusive)
	h.Observe(1500) // ≤2000
	h.Observe(9999) // +Inf

	out := scrape(t, r)
	wantLine(t, out, `test_lat_seconds_bucket{le="1e-06"} 2`)
	wantLine(t, out, `test_lat_seconds_bucket{le="2e-06"} 3`)
	wantLine(t, out, `test_lat_seconds_bucket{le="4e-06"} 3`)
	wantLine(t, out, `test_lat_seconds_bucket{le="+Inf"} 4`)
	wantLine(t, out, "test_lat_seconds_count 4")
	if h.Count() != 4 || h.Sum() != 500+1000+1500+9999 {
		t.Fatalf("count %d sum %d", h.Count(), h.Sum())
	}
}

func TestHistogramWithLabelsAppendsLe(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", 1, []int64{5}, Label{"op", "x"})
	h.Observe(3)
	out := scrape(t, r)
	wantLine(t, out, `test_lat_seconds_bucket{op="x",le="5"} 1`)
	wantLine(t, out, `test_lat_seconds_sum{op="x"} 3`)
	wantLine(t, out, `test_lat_seconds_count{op="x"} 1`)
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "t", Label{"z", "a"}, Label{"a", `q"u\o` + "\n"}).Inc()
	wantLine(t, scrape(t, r), `test_total{a="q\"u\\o\n",z="a"} 1`)
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", 1, []int64{1})
	r.CounterFunc("y_total", "y", func() float64 { return 1 })
	r.GaugeFunc("y", "y", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test", "t")
	h := r.Histogram("test_seconds", "t", 1e-9, ExpBounds(1000, 2, 20))
	if n := testing.AllocsPerRun(100, func() { c.Inc(); g.Set(3); h.Observe(123456) }); n != 0 {
		t.Fatalf("hot path allocated %v times per run", n)
	}
}

func TestConcurrentObserveIsExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.Histogram("test_seconds", "t", 1, []int64{10, 100})
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*per)
	}
}
