// Package metrics is a dependency-free registry of atomic counters, gauges
// and fixed-bucket histograms with Prometheus text-format exposition.
//
// It is the live complement of internal/trace: the trace answers *which* and
// *why* post mortem, the registry answers *how many right now* while the
// process runs. The design constraints mirror the tracer's:
//
//   - allocation-free on the hot path: Add/Inc/Set/Observe are a handful of
//     atomic operations on preallocated state — no maps, no interface
//     boxing, no label rendering (label sets are fixed at registration and
//     pre-rendered into the series name);
//   - nil-safe: every method works on a nil receiver as a no-op, so
//     instrumented code holds a possibly-nil metric and calls it
//     unconditionally, exactly like trace.Tracer.Emit;
//   - exact: counters are int64 atomics read at scrape time, so an exported
//     value reconciles against its source counter to the unit
//     (cmd/tsvd-metrics-check enforces this, like tsvd-trace-check does for
//     the trace).
//
// Exposition (WritePrometheus) is the only allocating path; it renders the
// Prometheus text format (HELP/TYPE comments, cumulative `le` buckets,
// `_sum`/`_count`) and is called once per scrape, never per event.
// Function-backed series (CounterFunc, GaugeFunc) are read at scrape time,
// so an existing atomic counter can be exported live with zero additional
// hot-path cost.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed name="value" pair attached to a series at registration.
// Labels never vary per observation — dynamic label values would force a map
// lookup (and allocation) onto the hot path, which this package exists to
// avoid.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
	// pad keeps independently incremented counters off one cache line when
	// they are allocated together (same reason the detector shards pad).
	_ [56]byte
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (negative to decrease). Nil-safe.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value. Nil-safe (zero).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations (typically
// nanoseconds or sizes). Bucket upper bounds are set at registration; an
// implicit +Inf bucket catches the tail. Observe is a short linear scan over
// the bounds plus three atomic adds — allocation-free and lock-free.
//
// The unit multiplier converts raw observations to the exposition scale
// (e.g. 1e-9 to observe nanoseconds and expose Prometheus-conventional
// seconds); it is applied only at scrape time, so the hot path stays in
// integer arithmetic.
type Histogram struct {
	bounds []int64 // ascending upper bounds, raw units (≤ bound lands in bucket)
	unit   float64
	counts []atomic.Int64 // len(bounds)+1; the last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records v (raw units). Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations. Nil-safe (zero).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the raw-unit sum of observations. Nil-safe (zero).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBounds builds n ascending bounds starting at start, each factor× the
// previous — the standard exponential bucket layout for latencies and sizes.
func ExpBounds(start int64, factor float64, n int) []int64 {
	out := make([]int64, n)
	v := float64(start)
	for i := range out {
		out[i] = int64(v)
		v *= factor
	}
	return out
}

// series is one exported time series within a family: a pre-rendered label
// set plus either a value function (counter/gauge) or a histogram.
type series struct {
	labels string // rendered `k="v",...` without braces; "" for no labels
	value  func() float64
	hist   *Histogram
}

// family groups series sharing one metric name (Prometheus requires one
// HELP/TYPE block per name).
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered metrics and renders them. Registration locks;
// the metrics themselves never do. The zero Registry is NOT usable — use
// NewRegistry — but a nil *Registry is: every registration method on nil
// returns a nil metric (whose methods are no-ops), so "metrics off" needs no
// branches at instrumentation sites.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter. Nil-safe (returns nil).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, "counter", &series{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(c.Value()) },
	})
	return c
}

// Gauge registers and returns a gauge. Nil-safe (returns nil).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, "gauge", &series{
		labels: renderLabels(labels),
		value:  func() float64 { return float64(g.Value()) },
	})
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the zero-hot-path-cost way to export an existing atomic counter.
// fn must be monotonic and safe for concurrent use. Nil-safe (no-op).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", &series{labels: renderLabels(labels), value: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time. Nil-safe (no-op).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", &series{labels: renderLabels(labels), value: fn})
}

// Histogram registers and returns a histogram with the given raw-unit bucket
// upper bounds (ascending) and exposition unit multiplier. Nil-safe
// (returns nil).
func (r *Registry) Histogram(name, help string, unit float64, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	h := &Histogram{bounds: bs, unit: unit, counts: make([]atomic.Int64, len(bs)+1)}
	r.register(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order.
// Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, s := range f.series {
			if s.hist != nil {
				b = appendHistogram(b, f.name, s)
			} else {
				b = appendSeries(b, f.name, s.labels, s.value())
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// ParseValues parses a Prometheus text exposition back into a map from
// series (name plus rendered labels, exactly as exposed) to value. It is
// the reconciliation half of WritePrometheus: cmd/tsvd-metrics-check and
// tests scrape, parse, and compare against source counters.
func ParseValues(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("metrics: malformed series line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

// Values scrapes the registry in-process: WritePrometheus piped through
// ParseValues. Nil-safe (empty map).
func (r *Registry) Values() map[string]float64 {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out, _ := ParseValues(sb.String()) // own output always parses
	return out
}

// appendSeries renders one `name{labels} value` line.
func appendSeries(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

// appendHistogram renders the cumulative bucket lines plus _sum and _count.
func appendHistogram(b []byte, name string, s *series) []byte {
	h := s.hist
	withLe := func(le string) string {
		if s.labels == "" {
			return `le="` + le + `"`
		}
		return s.labels + `,le="` + le + `"`
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		// Bucket bounds are coarse by construction, so 9 significant digits
		// render them cleanly ("1e-06", not "1.0000000000000002e-06" from
		// the unit multiplication); series values below keep full round-trip
		// precision because reconciliation depends on it.
		le := strconv.FormatFloat(float64(bound)*h.unit, 'g', 9, 64)
		b = appendSeries(b, name+"_bucket", withLe(le), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	b = appendSeries(b, name+"_bucket", withLe("+Inf"), float64(cum))
	b = appendSeries(b, name+"_sum", s.labels, float64(h.Sum())*h.unit)
	b = appendSeries(b, name+"_count", s.labels, float64(cum))
	return b
}

// renderLabels pre-renders a fixed label set as `k="v",k2="v2"`, sorted by
// name for deterministic output.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeValue escapes a label value per the text format: backslash, quote
// and newline.
func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal
// there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
