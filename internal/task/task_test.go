package task

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ids"
)

func TestRunAndResult(t *testing.T) {
	s := NewScheduler(nil)
	tk := Run(s, func() int { return 42 })
	if got := tk.Result(); got != 42 {
		t.Fatalf("Result = %d, want 42", got)
	}
	s.WaitIdle()
}

func TestRunRunsOnOtherGoroutine(t *testing.T) {
	s := NewScheduler(nil)
	parent := ids.CurrentThreadID()
	tk := Run(s, func() ids.ThreadID { return ids.CurrentThreadID() })
	if tk.Result() == parent {
		t.Fatal("task ran on the parent goroutine without inlining enabled")
	}
	if tk.Inlined() {
		t.Fatal("task reported inlined")
	}
}

func TestResultRepanics(t *testing.T) {
	s := NewScheduler(nil)
	tk := Run(s, func() int { panic("boom") })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("Result did not propagate the panic: %v", r)
		}
	}()
	tk.Result()
}

func TestTryResultCapturesPanic(t *testing.T) {
	s := NewScheduler(nil)
	tk := Run(s, func() int { panic("soft") })
	_, p := tk.TryResult()
	if p == nil {
		t.Fatal("TryResult lost the panic")
	}
}

func TestDone(t *testing.T) {
	s := NewScheduler(nil)
	release := make(chan struct{})
	tk := Run(s, func() int { <-release; return 1 })
	if tk.Done() {
		t.Fatal("task reported done while blocked")
	}
	close(release)
	tk.Wait()
	if !tk.Done() {
		t.Fatal("task not done after Wait")
	}
}

func TestContinueWith(t *testing.T) {
	s := NewScheduler(nil)
	tk := Run(s, func() int { return 7 })
	ck := ContinueWith(tk, func(v int) string {
		if v != 7 {
			t.Errorf("continuation received %d", v)
		}
		return "done"
	})
	if got := ck.Result(); got != "done" {
		t.Fatalf("continuation Result = %q", got)
	}
}

func TestWhenAll(t *testing.T) {
	s := NewScheduler(nil)
	var tasks []*Task[int]
	for i := 0; i < 10; i++ {
		i := i
		tasks = append(tasks, Run(s, func() int { return i * i }))
	}
	got := WhenAll(tasks...)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("WhenAll[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachProcessesAll(t *testing.T) {
	s := NewScheduler(nil)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	var par atomic.Int64
	var maxPar atomic.Int64
	ForEach(s, items, 8, func(v int) {
		cur := par.Add(1)
		for {
			old := maxPar.Load()
			if cur <= old || maxPar.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		sum.Add(int64(v))
		par.Add(-1)
	})
	if sum.Load() != 99*100/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if maxPar.Load() < 2 {
		t.Fatal("ForEach never ran items in parallel")
	}
	if maxPar.Load() > 8 {
		t.Fatalf("ForEach exceeded its degree: %d", maxPar.Load())
	}
}

func TestForEachEmptyAndPanic(t *testing.T) {
	s := NewScheduler(nil)
	ForEach(s, nil, 4, func(int) { t.Fatal("called for empty slice") })

	defer func() {
		if recover() == nil {
			t.Fatal("ForEach swallowed a panic")
		}
	}()
	ForEach(s, []int{1, 2, 3}, 2, func(v int) {
		if v == 2 {
			panic("item failure")
		}
	})
}

// TestForkJoinEventsReachDetector wires a recording detector and checks the
// fork and join edges of one task round trip.
func TestForkJoinEventsReachDetector(t *testing.T) {
	rec := &recordingDetector{}
	s := NewScheduler(rec)
	parent := ids.CurrentThreadID()
	tk := Run(s, func() int { return 1 })
	tk.Result()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.forks) != 1 || rec.forks[0][0] != parent {
		t.Fatalf("forks = %v", rec.forks)
	}
	if len(rec.joins) != 1 || rec.joins[0][0] != parent || rec.joins[0][1] != rec.forks[0][1] {
		t.Fatalf("joins = %v", rec.joins)
	}
}

// TestInlineFastTasks: with inlining enabled, spawn sites run synchronously
// from the start (the CLR's optimistic fast path) and keep doing so while
// their history stays fast — and ForceAsync overrides it.
func TestInlineFastTasks(t *testing.T) {
	s := NewScheduler(nil, WithInlineFastTasks())
	fast := func() int { return 1 }

	parent := ids.CurrentThreadID()
	spawn := func() *Task[int] { return Run(s, fast) } // one stable call site
	for i := 0; i < 3; i++ {
		tk := spawn()
		if tk.Result(); !tk.Inlined() {
			t.Fatalf("execution %d of a fast site was not inlined", i)
		}
		if got := tk.tid; got != parent {
			t.Fatalf("inlined task ran on goroutine %d, not the caller %d", got, parent)
		}
	}
	s.WaitIdle()
}

func TestInlineDisabledByDefault(t *testing.T) {
	s := NewScheduler(nil)
	spawn := func() *Task[int] { return Run(s, func() int { return 1 }) }
	if spawn().Inlined() || spawn().Inlined() {
		t.Fatal("inlining happened without WithInlineFastTasks")
	}
}

func TestForceAsyncOverridesInlining(t *testing.T) {
	s := NewScheduler(nil, WithInlineFastTasks(), WithForceAsync())
	spawn := func() *Task[int] { return Run(s, func() int { return 1 }) }
	for i := 0; i < 4; i++ {
		if spawn().Inlined() {
			t.Fatal("ForceAsync did not suppress inlining")
		}
	}
}

func TestSlowSitesMigrateToAsync(t *testing.T) {
	s := NewScheduler(nil, WithInlineFastTasks())
	spawn := func() *Task[int] {
		return Run(s, func() int { time.Sleep(3 * time.Millisecond); return 1 })
	}
	// The first execution is optimistically inlined and measured...
	if !spawn().Inlined() {
		t.Fatal("first execution of an unknown site was not inlined")
	}
	// ...after which the site's slow history forces real asynchrony.
	tk := spawn()
	tk.Result()
	if tk.Inlined() {
		t.Fatal("slow site stayed inlined after measurement")
	}
}

func TestWaitIdleWaitsForStragglers(t *testing.T) {
	s := NewScheduler(nil)
	var finished atomic.Bool
	Run(s, func() int {
		time.Sleep(20 * time.Millisecond)
		finished.Store(true)
		return 0
	})
	s.WaitIdle()
	if !finished.Load() {
		t.Fatal("WaitIdle returned before the task finished")
	}
}

// TestSqrtCacheScenario is Figure 3/4 end to end: two getSqrt calls race on
// an unsynchronized cache dictionary through task parallelism; TSVDHB (fed
// by this substrate's fork/join edges) and TSVD must both catch the TSV.
func TestSqrtCacheScenario(t *testing.T) {
	for _, algo := range []config.Algorithm{config.AlgoTSVD, config.AlgoTSVDHB} {
		t.Run(algo.String(), func(t *testing.T) {
			det, err := core.New(config.Defaults(algo).Scaled(0.1))
			if err != nil {
				t.Fatal(err)
			}
			s := NewScheduler(det, WithForceAsync())
			// A shared "dict" accessed through OnCall directly: Add
			// (write) at one site, ContainsKey (read) at another.
			const dictObj = ids.ObjectID(77)
			getSqrt := func(x float64) *Task[float64] {
				return Run(s, func() float64 {
					core.OnCallLegacy(det, core.AccessLegacy{
						Thread: ids.CurrentThreadID(), Obj: dictObj,
						Op: 7701, Kind: core.KindRead,
						Class: "Dictionary", Method: "ContainsKey",
					})
					time.Sleep(time.Millisecond)
					core.OnCallLegacy(det, core.AccessLegacy{
						Thread: ids.CurrentThreadID(), Obj: dictObj,
						Op: 7702, Kind: core.KindWrite,
						Class: "Dictionary", Method: "Add",
					})
					return x
				})
			}
			deadline := time.Now().Add(10 * time.Second)
			for det.Reports().UniqueBugs() == 0 && time.Now().Before(deadline) {
				a := getSqrt(2)
				b := getSqrt(3)
				a.Result()
				b.Result()
			}
			if det.Reports().UniqueBugs() == 0 {
				t.Fatalf("%v missed the Figure 3 cache race", algo)
			}
		})
	}
}

type recordingDetector struct {
	core.NopDetector
	mu    sync.Mutex
	forks [][2]ids.ThreadID
	joins [][2]ids.ThreadID
}

func (r *recordingDetector) OnFork(parent, child ids.ThreadID) {
	r.mu.Lock()
	r.forks = append(r.forks, [2]ids.ThreadID{parent, child})
	r.mu.Unlock()
}

func (r *recordingDetector) OnJoin(waiter, done ids.ThreadID) {
	r.mu.Lock()
	r.joins = append(r.joins, [2]ids.ThreadID{waiter, done})
	r.mu.Unlock()
}
