// Package task is the unstructured task-parallelism substrate — the Go
// analogue of .NET's Task Parallel Library that the paper's target programs
// are written against (§2.3). Tasks are forked explicitly (Run), through
// data-parallel loops (ForEach), or as continuations (ContinueWith); any
// task can be joined from anywhere via Wait/Result, so fork/join graphs are
// arbitrary, not series-parallel.
//
// The scheduler publishes fork and join events to a detector. Only the
// TSVDHB variant consumes them; TSVD ignores them, which is its design
// point. The scheduler also emulates the CLR optimization that runs fast
// async functions synchronously (§4): with inlining enabled, a spawn site
// whose function historically completes quickly executes inline on the
// caller's goroutine — hiding concurrency from tests exactly as the paper
// describes. TSVD instrumentation counters this with ForceAsync.
package task

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// defaultInlineThreshold is the historical mean duration under which a
// spawn site is considered "fast" and eligible for synchronous inlining.
const defaultInlineThreshold = time.Millisecond

// Scheduler owns task bookkeeping for one test/module execution.
type Scheduler struct {
	det core.Detector // may be nil (uninstrumented)

	mu              sync.Mutex
	inlineFast      bool
	forceAsync      bool
	inlineThreshold time.Duration
	siteStats       map[ids.OpID]*siteStat
	wg              sync.WaitGroup
}

type siteStat struct {
	runs  int64
	total time.Duration
}

// SchedulerOption configures a Scheduler.
type SchedulerOption func(*Scheduler)

// WithInlineFastTasks enables the CLR-like optimization: spawn sites with a
// history of sub-millisecond completions run synchronously.
func WithInlineFastTasks() SchedulerOption {
	return func(s *Scheduler) { s.inlineFast = true }
}

// WithForceAsync is TSVD's instrumentation override (§4): every task runs
// asynchronously regardless of inlining heuristics.
func WithForceAsync() SchedulerOption {
	return func(s *Scheduler) { s.forceAsync = true }
}

// WithInlineThreshold overrides what counts as a "fast" task for the
// inlining optimization; time-scaled harnesses scale it with their pace.
func WithInlineThreshold(d time.Duration) SchedulerOption {
	return func(s *Scheduler) { s.inlineThreshold = d }
}

// NewScheduler returns a Scheduler reporting fork/join events to det
// (nil for none).
func NewScheduler(det core.Detector, opts ...SchedulerOption) *Scheduler {
	s := &Scheduler{
		det:             det,
		siteStats:       map[ids.OpID]*siteStat{},
		inlineThreshold: defaultInlineThreshold,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WaitIdle blocks until every task spawned through this scheduler has
// completed. Test harnesses call it between the test body and report
// collection.
func (s *Scheduler) WaitIdle() { s.wg.Wait() }

// shouldInline consults the spawn site's completion history. Mirroring the
// CLR optimization, inlining is optimistic: a site runs synchronously until
// its history proves it slow — which is exactly why tests that mock slow
// I/O with fast stubs never exercise real concurrency (§4).
func (s *Scheduler) shouldInline(site ids.OpID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forceAsync || !s.inlineFast {
		return false
	}
	st := s.siteStats[site]
	if st == nil || st.runs == 0 {
		return true // optimistic: assume fast until measured otherwise
	}
	return time.Duration(int64(st.total)/st.runs) < s.inlineThreshold
}

func (s *Scheduler) recordRun(site ids.OpID, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.siteStats[site]
	if st == nil {
		st = &siteStat{}
		s.siteStats[site] = st
	}
	st.runs++
	st.total += d
}

// Task is an asynchronous unit of work producing a T. Task handles are
// first-class values: they can be stored, passed around, and joined by any
// goroutine — the unstructured parallelism of §2.3.
type Task[T any] struct {
	done chan struct{}

	// Written by the executing goroutine before done is closed.
	result   T
	panicVal any
	tid      ids.ThreadID
	inlined  bool

	sched *Scheduler
}

// Run forks fn as a task (TPL's Task.Run). The spawn site is attributed to
// Run's caller for the inlining heuristic.
func Run[T any](s *Scheduler, fn func() T) *Task[T] {
	return runAt(s, ids.CallerOp(0), fn)
}

func runAt[T any](s *Scheduler, site ids.OpID, fn func() T) *Task[T] {
	t := &Task[T]{done: make(chan struct{}), sched: s}
	if s.shouldInline(site) {
		// CLR-style synchronous execution of a fast task: no fork, no
		// new thread, concurrency hidden. Duration is still recorded so
		// slow sites migrate to real asynchrony.
		t.inlined = true
		t.tid = ids.CurrentThreadID()
		start := time.Now()
		t.invoke(fn)
		s.recordRun(site, time.Since(start))
		close(t.done)
		return t
	}
	var parent ids.ThreadID
	if s.det != nil {
		parent = ids.CurrentThreadID()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if s.det != nil {
			t.tid = ids.CurrentThreadID()
			s.det.OnFork(parent, t.tid)
		}
		start := time.Now()
		t.invoke(fn)
		s.recordRun(site, time.Since(start))
		close(t.done)
	}()
	return t
}

// invoke runs fn capturing panics, which surface at Result like .NET's
// exception propagation on Task.Result.
func (t *Task[T]) invoke(fn func() T) {
	defer func() {
		if r := recover(); r != nil {
			t.panicVal = r
		}
	}()
	t.result = fn()
}

// Wait blocks until the task completes and records the join edge.
func (t *Task[T]) Wait() {
	<-t.done
	if t.inlined {
		return // ran on the caller's own goroutine; no edge to record
	}
	if t.sched.det != nil {
		t.sched.det.OnJoin(ids.CurrentThreadID(), t.tid)
	}
}

// Result blocks for the task's value (TPL's Task.Result). A panic inside
// the task re-panics here, wrapped to preserve the origin.
func (t *Task[T]) Result() T {
	t.Wait()
	if t.panicVal != nil {
		panic(fmt.Sprintf("task: panic in task body: %v", t.panicVal))
	}
	return t.result
}

// TryResult is Result without re-panicking; it returns the captured panic
// value, if any.
func (t *Task[T]) TryResult() (T, any) {
	t.Wait()
	return t.result, t.panicVal
}

// Done reports whether the task has completed without blocking.
func (t *Task[T]) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Inlined reports whether the task was executed synchronously by the
// fast-async optimization (visible for tests and the §4 experiment).
func (t *Task[T]) Inlined() bool {
	<-t.done
	return t.inlined
}

// ContinueWith schedules fn to run as a new task after t completes,
// receiving t's result (TPL's Task.ContinueWith). The continuation task
// observes a join edge from t.
func ContinueWith[T, U any](t *Task[T], fn func(T) U) *Task[U] {
	s := t.sched
	site := ids.CallerOp(0)
	return runAt(s, site, func() U {
		v := t.Result()
		return fn(v)
	})
}

// WhenAll waits for every task and collects the results in order (TPL's
// Task.WhenAll + Result).
func WhenAll[T any](tasks ...*Task[T]) []T {
	out := make([]T, len(tasks))
	for i, t := range tasks {
		out[i] = t.Result()
	}
	return out
}

// ForEach applies fn to every item with bounded parallelism (TPL's
// Parallel.ForEach). Worker tasks pull indices from a shared cursor; the
// call returns when all items are processed. Panics in fn are re-raised
// after all workers finish, mirroring .NET's AggregateException.
func ForEach[T any](s *Scheduler, items []T, degree int, fn func(T)) {
	if len(items) == 0 {
		return
	}
	if degree <= 0 {
		degree = 4
	}
	if degree > len(items) {
		degree = len(items)
	}
	var cursor int64
	var cursorMu sync.Mutex
	next := func() int {
		cursorMu.Lock()
		defer cursorMu.Unlock()
		i := cursor
		cursor++
		return int(i)
	}
	site := ids.CallerOp(0)
	workers := make([]*Task[struct{}], degree)
	for w := 0; w < degree; w++ {
		workers[w] = runAt(s, site, func() struct{} {
			for {
				i := next()
				if i >= len(items) {
					return struct{}{}
				}
				fn(items[i])
			}
		})
	}
	var firstPanic any
	for _, w := range workers {
		if _, p := w.TryResult(); p != nil && firstPanic == nil {
			firstPanic = p
		}
	}
	if firstPanic != nil {
		panic(fmt.Sprintf("task: panic in ForEach body: %v", firstPanic))
	}
}
