package triage

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trapfile"
)

func TestSignatureCanonicalOrder(t *testing.T) {
	x := SiteTuple{Loc: "pkg/b.go:2", Class: "Map", Method: "Load"}
	y := SiteTuple{Loc: "pkg/a.go:1", Class: "Map", Method: "Store", Write: true}
	s1 := SignatureOf(x, y, "", "")
	s2 := SignatureOf(y, x, "", "")
	if s1 != s2 {
		t.Fatalf("order-sensitive signature: %+v vs %+v", s1, s2)
	}
	if s1.A.Loc != "pkg/a.go:1" {
		t.Fatalf("A side not canonical: %+v", s1.A)
	}
	if s1.ID() != s2.ID() {
		t.Fatal("IDs diverge for equal signatures")
	}
	other := SignatureOf(x, SiteTuple{Loc: "pkg/c.go:3"}, "", "")
	if other.ID() == s1.ID() {
		t.Fatal("distinct signatures share an ID")
	}
}

const stackMain = `goroutine 7 [running]:
repro/internal/core.(*tsvd).OnCall(0xc000100000, 0x1)
	/repo/internal/core/tsvd.go:100 +0x10
repro/internal/workload.(*Env).call(0xc000200000, 0x2)
	/repo/internal/workload/workload.go:174 +0x20
main.run(0xc000300000)
	/repo/cmd/x/main.go:10 +0x30
`

const stackWorker = `goroutine 9 [running]:
repro/internal/core.(*tsvd).OnCall(0xc000100aaa, 0x1)
	/repo/internal/core/tsvd.go:100 +0x10
repro/internal/workload.(*Env).call(0xc000200bbb, 0x2)
	/repo/internal/workload/workload.go:174 +0x20
repro/internal/task.worker(0xc000400000)
	/repo/internal/task/sched.go:55 +0x40
created by repro/internal/task.spawn
	/repo/internal/task/sched.go:40 +0x50
`

func TestStackShapeAnchorsAboveDetectorFrames(t *testing.T) {
	if got := anchorFrame(stackMain); got != "repro/internal/workload.(*Env).call" {
		t.Fatalf("anchor = %q", got)
	}
	// Same anchor despite different goroutine scaffolding below it and
	// different argument addresses: the shape must not split one bug.
	if StackShapeOf(stackMain, stackMain) != StackShapeOf(stackWorker, stackWorker) {
		t.Fatal("scheduling scaffolding split the stack shape")
	}
	// Order-insensitive across the two roles.
	if StackShapeOf(stackMain, stackWorker) != StackShapeOf(stackWorker, stackMain) {
		t.Fatal("stack shape is order-sensitive")
	}
	if StackShapeOf("", "") != 0 {
		t.Fatal("empty stacks must hash to 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	low, high := wilson(0, 0)
	if low != 0 || high != 0 {
		t.Fatalf("zero trials: [%v, %v]", low, high)
	}
	low, high = wilson(8, 10)
	// Known value: 8/10 → approximately [0.49, 0.94].
	if math.Abs(low-0.49) > 0.02 || math.Abs(high-0.943) > 0.02 {
		t.Fatalf("wilson(8,10) = [%v, %v]", low, high)
	}
	low, high = wilson(10, 10)
	if high != 1 && high < 0.999 {
		t.Fatalf("wilson(10,10) high = %v", high)
	}
	if low < 0.69 || low > 0.73 {
		t.Fatalf("wilson(10,10) low = %v", low)
	}
}

// fabricated locations and a module trace with one full trap lifecycle on
// the pair (la, lb) plus an unrelated pair that never springs.
func fabTrace(t *testing.T) (trace.ModuleTrace, ids.OpID, ids.OpID) {
	t.Helper()
	la := ids.InternKey("tt/m1/siteA")
	lb := ids.InternKey("tt/m1/siteB")
	lc := ids.InternKey("tt/m1/siteC")
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	mt := trace.ModuleTrace{Module: "m1", Run: 1, Events: []trace.Event{
		{Kind: trace.KindNearMiss, Thread: 1, Obj: 5, OpA: lb, OpB: la, At: us(10), Dur: us(3)},
		{Kind: trace.KindPairAdded, Thread: 1, Obj: 5, OpA: la, OpB: lb, At: us(10)},
		{Kind: trace.KindDelayPlanned, Thread: 2, Obj: 5, OpA: la, At: us(20)},
		{Kind: trace.KindTrapSet, Thread: 2, Obj: 5, OpA: la, At: us(21), Dur: us(500)},
		{Kind: trace.KindTrapSprung, Thread: 3, Obj: 5, OpA: la, OpB: lb, At: us(30)},
		{Kind: trace.KindDelayProductive, Thread: 2, Obj: 5, OpA: la, At: us(40), Dur: us(19)},
		// Unrelated pair: observed together and trap-armed, never springs.
		{Kind: trace.KindNearMiss, Thread: 4, Obj: 9, OpA: lc, OpB: la, At: us(50), Dur: us(2)},
	}}
	return mt, la, lb
}

func TestAddTraceClustersAndExplains(t *testing.T) {
	mt, la, lb := fabTrace(t)
	sites := []trace.SiteRecord{
		{ID: 1, Loc: la.Key(), Class: "Map", Method: "Store", Write: true},
		{ID: 2, Loc: lb.Key(), Class: "Map", Method: "Load"},
	}
	tri := New()
	tri.AddTrace([]trace.ModuleTrace{mt}, sites, Provenance{Shard: 2, Round: 1, Source: "test"})
	tri.AddTrace([]trace.ModuleTrace{mt}, sites, Provenance{Shard: 3, Round: 2, Source: "test"})

	clusters := tri.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("got %d clusters, want 1 (duplicates must fold)", len(clusters))
	}
	c := clusters[0]
	if c.Firings != 2 {
		t.Fatalf("firings = %d, want 2", c.Firings)
	}
	if c.Sig.A.Class != "Map" || !c.Sig.A.Write {
		t.Fatalf("site metadata not resolved: %+v", c.Sig.A)
	}
	if c.Rank.FiringUnits != 2 || c.Rank.Opportunities != 2 || c.Rank.HitRate != 1 {
		t.Fatalf("rank = %+v", c.Rank)
	}
	if c.First.Shard != 2 || c.Last.Shard != 3 {
		t.Fatalf("provenance span = %+v .. %+v", c.First, c.Last)
	}
	ex := c.Explanation
	if ex == nil {
		t.Fatal("no explanation slice")
	}
	if ex.Object != 5 || ex.TrappedLoc != la.Key() || ex.ConflictingLoc != lb.Key() {
		t.Fatalf("explanation identity: %+v", ex)
	}
	if ex.GrantedDelayUS != 500 || ex.InjectedDelayUS != 19 {
		t.Fatalf("delays: granted %d injected %d", ex.GrantedDelayUS, ex.InjectedDelayUS)
	}
	if ex.HBOrdered {
		t.Fatal("no hb_edge in trace, yet HBOrdered")
	}
	if len(ex.Events) != 6 {
		t.Fatalf("slice has %d events, want 6:\n%+v", len(ex.Events), ex.Events)
	}
	if !strings.Contains(ex.Verdict, "no happens-before") ||
		!strings.Contains(ex.Verdict, "19µs injected delay") {
		t.Fatalf("verdict: %s", ex.Verdict)
	}
}

func TestAddRunUsesStackShapes(t *testing.T) {
	a := ids.InternKey("tt/run/siteA")
	b := ids.InternKey("tt/run/siteB")
	mkCol := func(stackB string) *report.Collector {
		col := report.NewCollector()
		col.Add(report.Violation{
			Object: 7,
			Trapped: report.Side{
				Thread: 1, Op: a, Write: true, Class: "List", Method: "Add", Stack: stackMain},
			Conflicting: report.Side{
				Thread: 2, Op: b, Class: "List", Method: "Get", Stack: stackB},
			When: 10 * time.Microsecond,
		})
		return col
	}
	tri := New()
	tri.AddRun(mkCol(stackMain), nil, Provenance{Source: "u1"})
	// Different scaffolding below the anchor frame: must fold, not split.
	tri.AddRun(mkCol(stackWorker), nil, Provenance{Source: "u2"})
	clusters := tri.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("got %d clusters, want 1", len(clusters))
	}
	c := clusters[0]
	if c.Sig.StackShape == 0 {
		t.Fatal("stack shape not computed from violation stacks")
	}
	if c.Firings != 2 || c.Rank.FiringUnits != 2 {
		t.Fatalf("fold accounting: %+v", c)
	}
	// No traces were ingested: opportunities degrade to firing units.
	if c.Rank.Opportunities != 2 {
		t.Fatalf("opportunities = %d, want 2 (degraded)", c.Rank.Opportunities)
	}
}

func TestOpportunitiesWithoutFirings(t *testing.T) {
	mt, la, _ := fabTrace(t)
	lc := ids.InternKey("tt/m1/siteC")
	tri := New()
	tri.AddTrace([]trace.ModuleTrace{mt}, nil, Provenance{})
	// The (la, lc) pair near-missed with a trap armed at la but never
	// sprang: it must not appear as a cluster, but the armed map must have
	// counted the opportunity.
	for _, c := range tri.Clusters() {
		if c.Sig.pair() == pairLocOf(la.Key(), lc.Key()) {
			t.Fatal("non-firing pair became a cluster")
		}
	}
	tri.mu.Lock()
	got := tri.armed[pairLocOf(la.Key(), lc.Key())]
	tri.mu.Unlock()
	if got != 1 {
		t.Fatalf("armed count = %d, want 1", got)
	}
}

func TestRankingOrder(t *testing.T) {
	mt, _, _ := fabTrace(t)
	flaky := trace.ModuleTrace{Module: "m1", Run: 1, Events: []trace.Event{
		// Same pair arming context but no spring: an unconverted opportunity.
		{Kind: trace.KindNearMiss, Thread: 1, Obj: 5,
			OpA: ids.InternKey("tt/m1/siteA"), OpB: ids.InternKey("tt/m1/siteB"),
			At: 10 * time.Microsecond, Dur: 3 * time.Microsecond},
		{Kind: trace.KindTrapSet, Thread: 2, Obj: 5,
			OpA: ids.InternKey("tt/m1/siteA"), At: 21 * time.Microsecond, Dur: 500 * time.Microsecond},
		// A second pair that fires every unit.
		{Kind: trace.KindTrapSet, Thread: 4, Obj: 8,
			OpA: ids.InternKey("tt/m1/siteD"), At: 30 * time.Microsecond, Dur: 100 * time.Microsecond},
		{Kind: trace.KindTrapSprung, Thread: 5, Obj: 8,
			OpA: ids.InternKey("tt/m1/siteD"), OpB: ids.InternKey("tt/m1/siteE"),
			At: 35 * time.Microsecond},
	}}
	tri := New()
	tri.AddTrace([]trace.ModuleTrace{mt, flaky}, nil, Provenance{})
	tri.AddTrace([]trace.ModuleTrace{flaky}, nil, Provenance{})
	clusters := tri.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	// siteD/siteE fired 2/2 units; siteA/siteB fired 1/2. The always-firing
	// pair must rank first by Wilson lower bound.
	if clusters[0].Sig.A.Loc != "tt/m1/siteD" {
		t.Fatalf("ranking order wrong: first cluster is %+v (rank %+v), second %+v (rank %+v)",
			clusters[0].Sig, clusters[0].Rank, clusters[1].Sig, clusters[1].Rank)
	}
	if clusters[0].Rank.Low <= clusters[1].Rank.Low {
		t.Fatalf("rank lower bounds not ordered: %v <= %v",
			clusters[0].Rank.Low, clusters[1].Rank.Low)
	}
}

func TestFromTrapFile(t *testing.T) {
	f := trapfile.File{
		Version: trapfile.FormatVersion, Tool: "TSVD",
		Pairs: []trapfile.Pair{{A: "p/x:1", B: "p/y:2"}, {A: "p/y:2", B: "p/x:1"}},
		Sites: []trapfile.SiteRecord{{Loc: "p/x:1", Class: "Map", Method: "Store", Write: true}},
	}
	clusters := FromTrapFile(f)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2 (one per pair entry)", len(clusters))
	}
	// Both entries are the same unordered pair: identical IDs.
	if clusters[0].ID != clusters[1].ID {
		t.Fatalf("reversed pair got a different ID: %s vs %s", clusters[0].ID, clusters[1].ID)
	}
	if clusters[0].Sig.A.Class != "Map" {
		t.Fatalf("site table not resolved: %+v", clusters[0].Sig.A)
	}
	if clusters[0].Firings != 0 {
		t.Fatal("snapshot view must carry no firings")
	}
}

func TestMetricsAndOutput(t *testing.T) {
	mt, _, _ := fabTrace(t)
	tri := New()
	reg := metrics.NewRegistry()
	tri.RegisterMetrics(reg)
	tri.AddTrace([]trace.ModuleTrace{mt}, nil, Provenance{Source: "out-test"})

	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	text := prom.String()
	if !strings.Contains(text, "tsvd_triage_clusters_total 1") {
		t.Fatalf("clusters metric missing:\n%s", text)
	}
	if !strings.Contains(text, "tsvd_triage_firings_folded_total 1") {
		t.Fatalf("firings metric missing:\n%s", text)
	}

	clusters := tri.Clusters()
	var j, m bytes.Buffer
	if err := WriteJSON(&j, "TSVD", tri.Units(), clusters); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id"`, `"site_a"`, `"rank"`, `"explanation"`, `"verdict"`, `"first_seen"`} {
		if !strings.Contains(j.String(), want) {
			t.Fatalf("bugs.json missing %s:\n%s", want, j.String())
		}
	}
	if err := WriteMarkdown(&m, "TSVD", tri.Units(), clusters); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TSVD bug triage", "reproducibility:", "Explanation slice", "no happens-before"} {
		if !strings.Contains(m.String(), want) {
			t.Fatalf("bugs.md missing %q:\n%s", want, m.String())
		}
	}
}
