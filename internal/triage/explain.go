package triage

import (
	"fmt"

	"repro/internal/trace"
)

// Explanation is the minimal trace slice that justifies one cluster's
// verdict, in the style of error invariants for concurrent traces: of the
// thousands of drained events around a springing trap, only the handful
// that establish "these two accesses raced on this object, under this
// injected delay, with nothing ordering them" are kept, in stream order.
type Explanation struct {
	// Module names the producing suite execution's module.
	Module string `json:"module"`
	// Run is the 1-based run index within that module.
	Run int `json:"run"`
	// Object is the victim object both accesses touched.
	Object uint64 `json:"object"`
	// TrappedLoc is the parked side of the access pair.
	TrappedLoc string `json:"trapped_loc"`
	// ConflictingLoc is the side that ran into the armed trap.
	ConflictingLoc string `json:"conflicting_loc"`
	// GrantedDelayUS is the delay budget the trap parked with.
	GrantedDelayUS int64 `json:"granted_delay_us"`
	// InjectedDelayUS is what the trap owner actually slept (0 if the
	// wake event fell outside the drained window).
	InjectedDelayUS int64 `json:"injected_delay_us"`
	// HBEdgesBefore counts hb_edge events on this exact pair before the
	// spring.
	HBEdgesBefore int64 `json:"hb_edges_before"`
	// HBOrdered reports whether any such edge existed. A firing with
	// HBOrdered=false is the paper's core verdict: no happens-before
	// ordering separated the two accesses.
	HBOrdered bool `json:"hb_ordered"`
	// Events is the carved subsequence, in stream order.
	Events []ExplEvent `json:"events"`
	// Verdict is the one-sentence human summary naming the access pair,
	// the victim object, the injected delay, and the HB status.
	Verdict string `json:"verdict"`
}

// ExplEvent is one retained trace event with a note saying why it is in
// the slice.
type ExplEvent struct {
	// Kind is the snake_case event kind (trace wire name).
	Kind string `json:"kind"`
	// TUS is the event time in microseconds since detector start.
	TUS int64 `json:"t_us"`
	// Thread is the acting thread (0 when not meaningful).
	Thread int64 `json:"thread,omitempty"`
	// Obj is the object the event concerns (0 when not object-scoped).
	Obj uint64 `json:"obj,omitempty"`
	// LocA is the resolved primary location key.
	LocA string `json:"loc_a,omitempty"`
	// LocB is the resolved secondary location key (pair-shaped events).
	LocB string `json:"loc_b,omitempty"`
	// DurUS is the event's duration payload in microseconds.
	DurUS int64 `json:"dur_us,omitempty"`
	// Note states the event's role in the explanation.
	Note string `json:"note"`
}

// matchPair reports whether a pair-shaped event is on exactly the locs p.
func matchPair(e trace.Event, p pairLoc) bool {
	return pairLocOf(locKey(e.OpA), locKey(e.OpB)) == p
}

// explainPair carves the explanation slice for pair p out of one module
// trace, anchored on the first trap_sprung for that pair. It walks
// backwards for the arming context (the near miss that made the pair
// dangerous, its entry into the trap set, the planned delay, the trap
// registration) and forwards for the delay the trap owner actually served,
// and counts the hb_edge events that did NOT order the pair. Returns nil if
// the trace contains no spring for p.
func explainPair(mt trace.ModuleTrace, p pairLoc) *Explanation {
	evs := mt.Events
	sprungIdx := -1
	for i, e := range evs {
		if e.Kind == trace.KindTrapSprung && matchPair(e, p) {
			sprungIdx = i
			break
		}
	}
	if sprungIdx < 0 {
		return nil
	}
	sprung := evs[sprungIdx]
	ex := &Explanation{
		Module:         mt.Module,
		Run:            mt.Run,
		Object:         uint64(sprung.Obj),
		TrappedLoc:     locKey(sprung.OpA),
		ConflictingLoc: locKey(sprung.OpB),
	}

	// Backward pass: the most recent arming context before the spring.
	armIdx, plannedIdx, addIdx, nearIdx := -1, -1, -1, -1
	for i := sprungIdx - 1; i >= 0; i-- {
		e := evs[i]
		switch e.Kind {
		case trace.KindTrapSet:
			if armIdx < 0 && locKey(e.OpA) == ex.TrappedLoc && e.Obj == sprung.Obj {
				armIdx = i
				ex.GrantedDelayUS = e.Dur.Microseconds()
			}
		case trace.KindDelayPlanned:
			if plannedIdx < 0 && armIdx >= 0 && locKey(e.OpA) == ex.TrappedLoc &&
				e.Thread == evs[armIdx].Thread {
				plannedIdx = i
			}
		case trace.KindPairAdded:
			if addIdx < 0 && matchPair(e, p) {
				addIdx = i
			}
		case trace.KindNearMiss:
			if nearIdx < 0 && matchPair(e, p) {
				nearIdx = i
			}
		case trace.KindHBEdge:
			if matchPair(e, p) {
				ex.HBEdgesBefore++
			}
		}
	}
	ex.HBOrdered = ex.HBEdgesBefore > 0

	// Forward pass: the trap owner waking up tells us the delay actually
	// injected around the conflicting access.
	injIdx := -1
	if armIdx >= 0 {
		owner := evs[armIdx].Thread
		for i := sprungIdx + 1; i < len(evs); i++ {
			e := evs[i]
			if (e.Kind == trace.KindDelayInjected || e.Kind == trace.KindDelayProductive) &&
				locKey(e.OpA) == ex.TrappedLoc && e.Thread == owner {
				injIdx = i
				ex.InjectedDelayUS = e.Dur.Microseconds()
				if e.Kind == trace.KindDelayProductive {
					break // the flagged wake-up is the strongest evidence
				}
			}
		}
	}

	keep := func(i int, note string) {
		if i < 0 {
			return
		}
		e := evs[i]
		ex.Events = append(ex.Events, ExplEvent{
			Kind:   e.Kind.String(),
			TUS:    e.At.Microseconds(),
			Thread: int64(e.Thread),
			Obj:    uint64(e.Obj),
			LocA:   locKey(e.OpA),
			LocB:   opKeyOrEmpty(e),
			DurUS:  e.Dur.Microseconds(),
			Note:   note,
		})
	}
	keep(nearIdx, "near miss that flagged the pair as dangerous")
	keep(addIdx, "pair entered the trap set")
	keep(plannedIdx, "delay planned at the trapped site")
	keep(armIdx, "trap armed: owner parked on the victim object with the granted budget")
	keep(sprungIdx, "trap sprung: conflicting access hit the armed trap — the violation")
	keep(injIdx, "trap owner woke: the delay actually injected around the conflict")

	hb := "no happens-before edge ordered the pair before the trap sprang"
	if ex.HBOrdered {
		hb = fmt.Sprintf("%d happens-before edge(s) touched the pair, yet the trap still sprang", ex.HBEdgesBefore)
	}
	delay := "an injected delay"
	if ex.InjectedDelayUS > 0 {
		delay = fmt.Sprintf("a %dµs injected delay", ex.InjectedDelayUS)
	} else if ex.GrantedDelayUS > 0 {
		delay = fmt.Sprintf("a delay budget of %dµs", ex.GrantedDelayUS)
	}
	ex.Verdict = fmt.Sprintf(
		"unsynchronized access pair %s / %s on object %#x overlapped under %s; %s",
		ex.TrappedLoc, ex.ConflictingLoc, ex.Object, delay, hb)
	return ex
}

// opKeyOrEmpty resolves OpB for display, empty for single-loc events.
func opKeyOrEmpty(e trace.Event) string {
	if e.OpB == 0 {
		return ""
	}
	return locKey(e.OpB)
}
