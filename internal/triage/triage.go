// Package triage turns raw thread-safety-violation firings into one
// deduplicated, ranked, explained report per distinct bug — the layer the
// paper's "thousands of concurrency bugs" claim needs once the same TSV
// fires across K shards × R rounds (§5.2 deduplicates by location pair; this
// package generalizes that across processes and adds ranking and
// explanation).
//
// The pipeline has three stages, mirroring the ROADMAP item it closes:
//
//  1. Clustering. Every firing is folded under a canonical Signature — the
//     normalized site-pair tuple (stable location keys plus API metadata,
//     never process-local ids) and a stack-shape hash — so N firings of one
//     bug across runs, shards, and process restarts land in one BugCluster.
//  2. Reproducibility ranking. Each cluster counts firings against
//     opportunities (ingested units where a trap was armed at one of the
//     pair's sites and both sides were observed) and carries a Wilson
//     confidence interval on the per-unit hit rate, plus first/last-seen
//     provenance, so operators fix the most reproducible bugs first.
//  3. Explanation slices (explain.go). For each cluster the drained trace
//     events around the springing trap are carved down to the minimal
//     subsequence — the near miss that armed the pair, the planned and
//     injected delay on the victim object, the spring itself, and the
//     absence of any happens-before edge ordering the pair — in the style
//     of error invariants for concurrent traces.
//
// Ingestion has three sources matching the three deployment surfaces:
// AddRun (a harness Outcome's collector plus drained traces, in-process),
// AddTrace (events parsed back from a v5 events.jsonl, cmd/tsvd-triage), and
// FromTrapFile (a fleet daemon's merged pair snapshot, the degraded
// /v1/bugs view: identity without firing counts).
package triage

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/trapfile"
)

// SiteTuple is the cross-process identity of one side of a bug: the stable
// interned location key plus the API metadata the site registry carries.
// It deliberately contains no OpID or SiteID — those are process-local.
type SiteTuple struct {
	// Loc is the stable location key (ids.OpID.Key form).
	Loc string `json:"loc"`
	// Class names the thread-unsafe type, e.g. Dictionary.
	Class string `json:"class,omitempty"`
	// Method names the call on that type, e.g. Add.
	Method string `json:"method,omitempty"`
	// Write is true when this side is a write-API call.
	Write bool `json:"write,omitempty"`
}

// less orders tuples for signature canonicalization.
func (s SiteTuple) less(t SiteTuple) bool {
	if s.Loc != t.Loc {
		return s.Loc < t.Loc
	}
	if s.Class != t.Class {
		return s.Class < t.Class
	}
	if s.Method != t.Method {
		return s.Method < t.Method
	}
	return !s.Write && t.Write
}

// String renders the tuple the way bugs.md shows a side.
func (s SiteTuple) String() string {
	rw := "read"
	if s.Write {
		rw = "write"
	}
	if s.Class == "" && s.Method == "" {
		if s.Write {
			// A set write flag is affirmative even without API metadata.
			return fmt.Sprintf("%s (write)", s.Loc)
		}
		// Metadata-less sources (bare trap snapshots) can't distinguish a
		// read from an unknown kind; claim nothing.
		return s.Loc
	}
	return fmt.Sprintf("%s (%s.%s, %s)", s.Loc, s.Class, s.Method, rw)
}

// Signature is the canonical bug identity: the unordered site-pair tuple in
// normalized order plus the stack-shape hash. Two firings from different
// runs, shards, or process lifetimes produce equal Signatures exactly when
// they are the same bug, because every field is derived from cross-process
// stable strings.
type Signature struct {
	// A is the lesser side of the pair in tuple order.
	A SiteTuple `json:"site_a"`
	// B is the greater side, so A <= B always holds.
	B SiteTuple `json:"site_b"`
	// StackShape is the order-insensitive hash of the two sides' anchor
	// frames (StackShapeOf); 0 when the ingestion source carried no stacks
	// (trace-only and trap-snapshot ingestion).
	StackShape uint64 `json:"stack_shape,omitempty"`
}

// SignatureOf canonicalizes a signature from its two sides and stacks.
func SignatureOf(x, y SiteTuple, stackX, stackY string) Signature {
	if y.less(x) {
		x, y = y, x
	}
	return Signature{A: x, B: y, StackShape: StackShapeOf(stackX, stackY)}
}

// ID returns the cluster's short stable identifier: a 64-bit FNV digest of
// the signature fields, rendered as 16 hex digits. It is what bugs.json,
// bugs.md, and the /v1/bugs view key reports by.
func (s Signature) ID() string {
	h := fnv.New64a()
	for _, side := range [2]SiteTuple{s.A, s.B} {
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%t\x00", side.Loc, side.Class, side.Method, side.Write)
	}
	fmt.Fprintf(h, "%016x", s.StackShape)
	return fmt.Sprintf("%016x", h.Sum64())
}

// pair returns the loc-only pair key, the join point between stack-aware
// clusters and the stack-blind trace events (opportunities, explanations).
func (s Signature) pair() pairLoc { return pairLocOf(s.A.Loc, s.B.Loc) }

// pairLoc is an unordered location-key pair (A <= B).
type pairLoc struct{ A, B string }

func pairLocOf(a, b string) pairLoc {
	if b < a {
		a, b = b, a
	}
	return pairLoc{A: a, B: b}
}

// detectorFramePrefixes are the runtime-internal packages stripped from the
// top of a stack before picking its anchor frame: the frames between the
// access and the user code that performed it.
var detectorFramePrefixes = []string{
	"repro/internal/ids.",
	"repro/internal/core.",
	"repro/internal/collections.",
	"repro/internal/rawcol.",
	"repro/internal/task.",
	"runtime.",
}

// anchorFrame returns the function name of the innermost non-detector frame
// of a captured stack — the function that performed the instrumented call.
// The shape deliberately stops there: frames below the access (goroutine
// scaffolding, pool workers, test drivers) vary between schedules of the
// same bug, and including them would split one bug into many clusters.
func anchorFrame(stack string) string {
	for _, line := range strings.Split(stack, "\n") {
		if line == "" || line[0] == '\t' || strings.HasPrefix(line, "created by ") ||
			strings.HasPrefix(line, "goroutine ") {
			continue // headers, location lines, goroutine origins — not frames
		}
		fn := line
		if i := strings.LastIndexByte(fn, '('); i > 0 {
			fn = fn[:i]
		}
		internal := false
		for _, p := range detectorFramePrefixes {
			if strings.HasPrefix(fn, p) {
				internal = true
				break
			}
		}
		if !internal {
			return fn
		}
	}
	return ""
}

// StackShapeOf hashes the anchor frames of the two sides' stacks,
// order-insensitively (the same two stacks in either trapped/conflicting
// role are one shape). Empty stacks hash to 0, so stack-less ingestion
// sources and stack-bearing ones agree on "no shape".
func StackShapeOf(a, b string) uint64 {
	fa, fb := anchorFrame(a), anchorFrame(b)
	if fa == "" && fb == "" {
		return 0
	}
	if fb < fa {
		fa, fb = fb, fa
	}
	h := fnv.New64a()
	h.Write([]byte(fa))
	h.Write([]byte{0})
	h.Write([]byte(fb))
	return h.Sum64()
}

// Provenance labels one ingested unit: which shard and round of a fleet
// produced it, under which seed and sampling mode. Zero values simply render
// as absent — a standalone tsvd-run has no shard.
type Provenance struct {
	// Shard is the 1-based fleet shard (0 outside fleet mode).
	Shard int `json:"shard,omitempty"`
	// Round is the 1-based fleet round (0 outside fleet mode).
	Round int `json:"round,omitempty"`
	// Seed is the detector seed of the producing run.
	Seed int64 `json:"seed,omitempty"`
	// Mode is the sampling mode (full, sampled, observe-only).
	Mode string `json:"mode,omitempty"`
	// Source names the producer (e.g. "tsvd-run", "fleet", a trace dir).
	Source string `json:"source,omitempty"`
}

// Seen is one endpoint of a cluster's first/last-seen span: the provenance
// of the unit plus the detection time within it.
type Seen struct {
	Provenance
	// AtUS is the violation time within its run, in microseconds.
	AtUS int64 `json:"at_us"`
}

// Rank is a cluster's reproducibility measure: in how many ingested units
// the bug fired versus how many gave it a chance, with a 95% Wilson interval
// on that per-unit hit rate. Clusters sort by the interval's lower bound —
// the conservative "at least this reproducible" estimate.
type Rank struct {
	// FiringUnits counts ingested units with at least one firing.
	FiringUnits int64 `json:"firing_units"`
	// Opportunities counts ingested units where a trap was armed at one of
	// the pair's sites and both sides were observed together. 0 when the
	// ingestion source carried no trace events.
	Opportunities int64 `json:"opportunities"`
	// HitRate is FiringUnits / Opportunities (0 when unknown).
	HitRate float64 `json:"hit_rate"`
	// Low is the 95% Wilson score lower bound on the hit rate.
	Low float64 `json:"ci_low"`
	// High is the matching upper bound.
	High float64 `json:"ci_high"`
}

// wilson computes the 95% Wilson score interval for successes/trials.
func wilson(successes, trials int64) (low, high float64) {
	if trials <= 0 {
		return 0, 0
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return (center - margin) / denom, (center + margin) / denom
}

// rankOf fills a Rank from the unit counts.
func rankOf(firingUnits, opportunities int64) Rank {
	r := Rank{FiringUnits: firingUnits, Opportunities: opportunities}
	if opportunities > 0 {
		r.HitRate = float64(firingUnits) / float64(opportunities)
		r.Low, r.High = wilson(firingUnits, opportunities)
	}
	return r
}

// BugCluster is one deduplicated bug: every firing whose Signature matched,
// folded with its rank, provenance span, and explanation slice.
type BugCluster struct {
	// Sig is the canonical identity the firings were folded under.
	Sig Signature
	// ID is Sig.ID(), precomputed for output.
	ID string
	// Firings counts dynamic violations folded into this cluster.
	Firings int64
	// Rank is the reproducibility measure (filled by Clusters).
	Rank Rank
	// First and Last record the provenance span of the firings.
	First, Last Seen
	// Explanation is the trace-derived slice justifying the verdict; nil
	// when no ingested unit carried trace events for the pair.
	Explanation *Explanation

	firingUnits int64
	lastUnit    int64
}

// Triage folds firings from any number of ingestion calls into clusters.
// It is safe for concurrent use.
type Triage struct {
	mu       sync.Mutex
	clusters map[Signature]*BugCluster
	// armed counts, per loc pair, the units that were an opportunity;
	// armedUnit dedups within a unit.
	armed     map[pairLoc]int64
	armedUnit map[pairLoc]int64
	explains  map[pairLoc]*Explanation
	units     int64
	folded    int64
}

// New returns an empty Triage.
func New() *Triage {
	return &Triage{
		clusters:  map[Signature]*BugCluster{},
		armed:     map[pairLoc]int64{},
		armedUnit: map[pairLoc]int64{},
		explains:  map[pairLoc]*Explanation{},
	}
}

// RegisterMetrics exports the triage counters on reg (nil-safe):
// tsvd_triage_clusters_total (distinct clusters) and
// tsvd_triage_firings_folded_total (raw firings folded into them).
func (t *Triage) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("tsvd_triage_clusters_total",
		"Distinct bug clusters (signature-deduplicated TSVs).",
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.clusters))
		})
	reg.CounterFunc("tsvd_triage_firings_folded_total",
		"Raw violation firings folded into clusters.",
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.folded)
		})
}

// Units returns how many ingestion calls (runs) have been folded so far.
func (t *Triage) Units() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.units
}

// FiringsFolded returns the raw firings folded across all clusters.
func (t *Triage) FiringsFolded() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.folded
}

// sideTuple builds the cross-process tuple for one violation side.
func sideTuple(s report.Side) SiteTuple {
	return SiteTuple{Loc: locKey(s.Op), Class: s.Class, Method: s.Method, Write: s.Write}
}

// locKey resolves an op to its stable key, numeric fallback for ops that
// were never interned (fabricated tests) — mirroring the trace package's
// human-readable resolution so both ingestion paths agree.
func locKey(op ids.OpID) string {
	if k := op.Key(); k != "" {
		return k
	}
	return fmt.Sprintf("op#%d", uint64(op))
}

// AddRun ingests one suite execution as a single unit: the collector's raw
// violations (stack-aware signatures) plus the drained traces (opportunity
// accounting and explanation slices). traces may be empty — reports alone
// still cluster, with zero opportunities.
func (t *Triage) AddRun(col *report.Collector, traces []trace.ModuleTrace, prov Provenance) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.units++
	unit := t.units
	for _, v := range col.Violations() {
		sig := SignatureOf(sideTuple(v.Trapped), sideTuple(v.Conflicting),
			v.Trapped.Stack, v.Conflicting.Stack)
		t.fold(sig, v.When, prov, unit)
	}
	t.noteTraces(traces, unit)
}

// AddTrace ingests one trace-only unit (events parsed back from a v5
// events.jsonl by cmd/tsvd-triage): firings come from trap_sprung events,
// tuples resolve through the summary's site table, and stack shapes are 0
// (the wire carries no stacks).
func (t *Triage) AddTrace(traces []trace.ModuleTrace, sites []trace.SiteRecord, prov Provenance) {
	byLoc := map[string]trace.SiteRecord{}
	for _, s := range sites {
		byLoc[s.Loc] = s
	}
	tuple := func(op ids.OpID) SiteTuple {
		loc := locKey(op)
		if s, ok := byLoc[loc]; ok {
			return SiteTuple{Loc: loc, Class: s.Class, Method: s.Method, Write: s.Write}
		}
		return SiteTuple{Loc: loc}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.units++
	unit := t.units
	for _, mt := range traces {
		for _, e := range mt.Events {
			if e.Kind != trace.KindTrapSprung {
				continue
			}
			sig := SignatureOf(tuple(e.OpA), tuple(e.OpB), "", "")
			t.fold(sig, e.At, prov, unit)
		}
	}
	t.noteTraces(traces, unit)
}

// fold records one firing under sig. Caller holds t.mu.
func (t *Triage) fold(sig Signature, when time.Duration, prov Provenance, unit int64) {
	c := t.clusters[sig]
	if c == nil {
		c = &BugCluster{
			Sig:   sig,
			ID:    sig.ID(),
			First: Seen{Provenance: prov, AtUS: when.Microseconds()},
		}
		t.clusters[sig] = c
	}
	c.Firings++
	t.folded++
	if c.lastUnit != unit {
		c.lastUnit = unit
		c.firingUnits++
	}
	c.Last = Seen{Provenance: prov, AtUS: when.Microseconds()}
}

// noteTraces accounts opportunities and builds missing explanation slices
// from one unit's traces. Caller holds t.mu.
func (t *Triage) noteTraces(traces []trace.ModuleTrace, unit int64) {
	for _, mt := range traces {
		trapSet := map[string]bool{}
		pairs := map[pairLoc]bool{}
		for _, e := range mt.Events {
			switch e.Kind {
			case trace.KindTrapSet:
				trapSet[locKey(e.OpA)] = true
			case trace.KindNearMiss, trace.KindPairAdded, trace.KindTrapSprung,
				trace.KindPairPrunedHB, trace.KindPairPrunedDecay:
				pairs[pairLocOf(locKey(e.OpA), locKey(e.OpB))] = true
			}
		}
		for p := range pairs {
			if !trapSet[p.A] && !trapSet[p.B] {
				continue // both sides observed, but no trap ever armed
			}
			if t.armedUnit[p] != unit {
				t.armedUnit[p] = unit
				t.armed[p]++
			}
		}
		for _, e := range mt.Events {
			if e.Kind != trace.KindTrapSprung {
				continue
			}
			p := pairLocOf(locKey(e.OpA), locKey(e.OpB))
			if t.explains[p] == nil {
				if ex := explainPair(mt, p); ex != nil {
					t.explains[p] = ex
				}
			}
		}
	}
}

// Clusters returns the folded clusters ranked most-reproducible first
// (Wilson lower bound, then firings, then ID for determinism), each with
// its Rank computed and its explanation slice attached.
func (t *Triage) Clusters() []BugCluster {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]BugCluster, 0, len(t.clusters))
	for _, c := range t.clusters {
		cc := *c
		opps := t.armed[c.Sig.pair()]
		if opps < c.firingUnits {
			// Trace-less units can fire without trace-visible opportunities;
			// a firing unit is an opportunity by definition.
			opps = c.firingUnits
		}
		cc.Rank = rankOf(c.firingUnits, opps)
		cc.Explanation = t.explains[c.Sig.pair()]
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank.Low != out[j].Rank.Low {
			return out[i].Rank.Low > out[j].Rank.Low
		}
		if out[i].Firings != out[j].Firings {
			return out[i].Firings > out[j].Firings
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FromTrapFile derives the degraded triage view a fleet daemon can serve
// from its merged snapshot alone: one cluster per dangerous pair, identity
// resolved through the file's site table, with no firing counts (those live
// with the shards' own triage reports — the daemon only ever sees pairs).
func FromTrapFile(f trapfile.File) []BugCluster {
	byLoc := map[string]trapfile.SiteRecord{}
	for _, s := range f.Sites {
		byLoc[s.Loc] = s
	}
	tuple := func(loc string) SiteTuple {
		if s, ok := byLoc[loc]; ok {
			return SiteTuple{Loc: loc, Class: s.Class, Method: s.Method, Write: s.Write}
		}
		return SiteTuple{Loc: loc}
	}
	out := make([]BugCluster, 0, len(f.Pairs))
	for _, p := range f.Pairs {
		sig := SignatureOf(tuple(p.A), tuple(p.B), "", "")
		out = append(out, BugCluster{Sig: sig, ID: sig.ID()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
