package triage

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// JSONCluster is the wire form of one BugCluster in bugs.json and the
// daemon's /v1/bugs view. All identity fields are cross-process strings.
type JSONCluster struct {
	// ID is the stable signature digest (Signature.ID).
	ID string `json:"id"`
	// SiteA is the lesser side of the normalized pair.
	SiteA SiteTuple `json:"site_a"`
	// SiteB is the greater side.
	SiteB SiteTuple `json:"site_b"`
	// StackShape is the hex stack-shape hash ("0" for stack-less sources).
	StackShape string `json:"stack_shape"`
	// Firings is the raw violation count folded into the cluster.
	Firings int64 `json:"firings"`
	// Rank is the reproducibility measure.
	Rank Rank `json:"rank"`
	// FirstSeen is the earliest firing's provenance; omitted when the
	// cluster never fired (trap-snapshot view).
	FirstSeen *Seen `json:"first_seen,omitempty"`
	// LastSeen is the latest firing's provenance, same omission rule.
	LastSeen *Seen `json:"last_seen,omitempty"`
	// Explanation is the carved trace slice, when any unit provided one.
	Explanation *Explanation `json:"explanation,omitempty"`
}

// JSONClusterOf converts one ranked cluster to its wire form.
func JSONClusterOf(c BugCluster) JSONCluster {
	jc := JSONCluster{
		ID:          c.ID,
		SiteA:       c.Sig.A,
		SiteB:       c.Sig.B,
		StackShape:  fmt.Sprintf("%x", c.Sig.StackShape),
		Firings:     c.Firings,
		Rank:        c.Rank,
		Explanation: c.Explanation,
	}
	if c.Firings > 0 {
		first, last := c.First, c.Last
		jc.FirstSeen, jc.LastSeen = &first, &last
	}
	return jc
}

// jsonReport is the bugs.json envelope.
type jsonReport struct {
	Tool     string        `json:"tool"`
	Clusters int           `json:"clusters"`
	Firings  int64         `json:"firings_folded"`
	Units    int64         `json:"units,omitempty"`
	Bugs     []JSONCluster `json:"bugs"`
}

// WriteJSON writes the ranked clusters as the bugs.json document.
func WriteJSON(w io.Writer, tool string, units int64, clusters []BugCluster) error {
	rep := jsonReport{Tool: tool, Clusters: len(clusters), Units: units,
		Bugs: make([]JSONCluster, 0, len(clusters))}
	for _, c := range clusters {
		rep.Firings += c.Firings
		rep.Bugs = append(rep.Bugs, JSONClusterOf(c))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteMarkdown writes the human-readable bugs.md: one section per cluster,
// ranked most-reproducible first, each naming the access pair, the rank,
// the provenance span, and the explanation slice.
func WriteMarkdown(w io.Writer, tool string, units int64, clusters []BugCluster) error {
	var total int64
	for _, c := range clusters {
		total += c.Firings
	}
	fmt.Fprintf(w, "# %s bug triage\n\n", tool)
	fmt.Fprintf(w, "%d cluster(s) from %d firing(s) across %d unit(s).\n\n",
		len(clusters), total, units)
	for i, c := range clusters {
		fmt.Fprintf(w, "## %d. bug %s\n\n", i+1, c.ID)
		fmt.Fprintf(w, "- pair: %s ↔ %s\n", c.Sig.A, c.Sig.B)
		if c.Sig.StackShape != 0 {
			fmt.Fprintf(w, "- stack shape: %016x\n", c.Sig.StackShape)
		}
		fmt.Fprintf(w, "- firings: %d\n", c.Firings)
		if c.Rank.Opportunities > 0 {
			fmt.Fprintf(w, "- reproducibility: %d/%d units (hit rate %.2f, 95%% CI [%.2f, %.2f])\n",
				c.Rank.FiringUnits, c.Rank.Opportunities, c.Rank.HitRate, c.Rank.Low, c.Rank.High)
		} else if c.Firings > 0 {
			fmt.Fprintf(w, "- reproducibility: unknown (no trace-visible opportunities)\n")
		}
		if c.Firings > 0 {
			fmt.Fprintf(w, "- first seen: %s\n", seenString(c.First))
			fmt.Fprintf(w, "- last seen: %s\n", seenString(c.Last))
		}
		if ex := c.Explanation; ex != nil {
			fmt.Fprintf(w, "\n%s\n\nExplanation slice (%s run %d):\n\n", ex.Verdict, ex.Module, ex.Run)
			for _, e := range ex.Events {
				loc := e.LocA
				if e.LocB != "" {
					loc += " / " + e.LocB
				}
				fmt.Fprintf(w, "- t=%dµs %s (%s) — %s\n", e.TUS, e.Kind, loc, e.Note)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// seenString renders one provenance endpoint for bugs.md.
func seenString(s Seen) string {
	out := fmt.Sprintf("t=%dµs", s.AtUS)
	if s.Shard > 0 {
		out += fmt.Sprintf(" shard %d", s.Shard)
	}
	if s.Round > 0 {
		out += fmt.Sprintf(" round %d", s.Round)
	}
	if s.Seed != 0 {
		out += fmt.Sprintf(" seed %d", s.Seed)
	}
	if s.Mode != "" {
		out += " mode " + s.Mode
	}
	if s.Source != "" {
		out += " source " + s.Source
	}
	return out
}

// WriteDir writes bugs.json and bugs.md for the ranked clusters into dir,
// creating it if needed.
func WriteDir(dir, tool string, units int64, clusters []BugCluster) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "bugs.json"))
	if err != nil {
		return err
	}
	if err := WriteJSON(jf, tool, units, clusters); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(dir, "bugs.md"))
	if err != nil {
		return err
	}
	if err := WriteMarkdown(mf, tool, units, clusters); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}
