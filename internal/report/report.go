// Package report defines thread-safety-violation bug reports and their
// aggregation. Following the paper (§5.2), a *bug* is uniquely identified by
// the unordered pair of static program locations participating in the
// violation; the same bug can manifest through many different stack-trace
// pairs and many dynamic occurrences, which the Collector counts separately.
package report

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
)

// Side describes one of the two accesses caught red-handed in a violation.
type Side struct {
	Thread ids.ThreadID
	Op     ids.OpID
	// Site is the interned site handle the access carried (stable only
	// within the producing process; serialized outputs pair it with a site
	// table). Class and Method are resolved from it at report time.
	Site ids.SiteID
	// Write is true when this side is a write-API call.
	Write bool
	// Class and Method describe the thread-unsafe API, e.g. Dictionary.Add.
	Class  string
	Method string
	// Stack is the goroutine stack at the moment of the access.
	Stack string
}

// Violation is one dynamic thread-safety violation: a trapped access and the
// conflicting access that ran into the trap, on the same object.
type Violation struct {
	Object ids.ObjectID
	// Trapped is the access that was delayed (the trap owner);
	// Conflicting is the access that arrived during the delay.
	Trapped     Side
	Conflicting Side
	// When records the detection time relative to detector start.
	When time.Duration
	// Async is true when either side ran on a task-pool thread
	// (set by the harness for Table-1 statistics).
	Async bool
}

// PairKey canonically identifies a bug by its unordered location pair.
type PairKey struct {
	A, B ids.OpID // A <= B
}

// KeyOf builds the canonical PairKey for two locations.
func KeyOf(x, y ids.OpID) PairKey {
	if x > y {
		x, y = y, x
	}
	return PairKey{A: x, B: y}
}

// Key returns the violation's bug identity.
func (v *Violation) Key() PairKey { return KeyOf(v.Trapped.Op, v.Conflicting.Op) }

// SameLocation reports whether both sides are the same static location
// (Table 1: "% of same location bugs").
func (v *Violation) SameLocation() bool { return v.Trapped.Op == v.Conflicting.Op }

// ReadWrite reports whether the violation is a read-write conflict (as
// opposed to write-write).
func (v *Violation) ReadWrite() bool { return v.Trapped.Write != v.Conflicting.Write }

// String renders the report the way developers see it: the location pair
// first, then both stacks.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread-safety violation on %s object #%d\n", v.Trapped.Class, v.Object)
	fmt.Fprintf(&b, "  [trapped]     thread %d: %s.%s (%s) at %s\n",
		v.Trapped.Thread, v.Trapped.Class, v.Trapped.Method, rw(v.Trapped.Write), v.Trapped.Op.Location())
	fmt.Fprintf(&b, "  [conflicting] thread %d: %s.%s (%s) at %s\n",
		v.Conflicting.Thread, v.Conflicting.Class, v.Conflicting.Method, rw(v.Conflicting.Write), v.Conflicting.Op.Location())
	if v.Trapped.Stack != "" {
		fmt.Fprintf(&b, "  trapped stack:\n%s", indent(v.Trapped.Stack))
	}
	if v.Conflicting.Stack != "" {
		fmt.Fprintf(&b, "  conflicting stack:\n%s", indent(v.Conflicting.Stack))
	}
	return b.String()
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Bug aggregates every manifestation of one unique location-pair bug.
type Bug struct {
	Key   PairKey
	First Violation
	// Occurrences counts dynamic manifestations.
	Occurrences int
	// StackPairs counts distinct (trapped stack, conflicting stack) pairs.
	StackPairs int

	stackPairSet map[uint64]struct{}
}

// Collector deduplicates violations into bugs. It is safe for concurrent use
// (violations are reported from the middle of racing threads).
type Collector struct {
	mu   sync.Mutex
	bugs map[PairKey]*Bug
	all  []Violation
	// KeepAll retains every raw violation (memory-heavy; used by tests and
	// statistics, not by production runs).
	KeepAll bool
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{bugs: map[PairKey]*Bug{}, KeepAll: true}
}

// Add records one violation.
func (c *Collector) Add(v Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := v.Key()
	b := c.bugs[key]
	if b == nil {
		b = &Bug{Key: key, First: v, stackPairSet: map[uint64]struct{}{}}
		c.bugs[key] = b
	}
	b.Occurrences++
	h := stackPairHash(v.Trapped.Stack, v.Conflicting.Stack)
	if _, seen := b.stackPairSet[h]; !seen {
		b.stackPairSet[h] = struct{}{}
		b.StackPairs++
	}
	if c.KeepAll {
		c.all = append(c.all, v)
	}
}

func stackPairHash(a, b string) uint64 {
	// Order-insensitive: the same two stacks in either role are one pair.
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return h.Sum64()
}

// Bugs returns the deduplicated bugs sorted by first location for stable
// output.
func (c *Collector) Bugs() []Bug {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Bug, 0, len(c.bugs))
	for _, b := range c.bugs {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.A != out[j].Key.A {
			return out[i].Key.A < out[j].Key.A
		}
		return out[i].Key.B < out[j].Key.B
	})
	return out
}

// Violations returns every recorded raw violation (requires KeepAll).
func (c *Collector) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.all))
	copy(out, c.all)
	return out
}

// UniqueBugs returns the number of unique location-pair bugs.
func (c *Collector) UniqueBugs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bugs)
}

// UniqueLocations returns the number of distinct static locations involved
// in any bug (Table 1: "# of unique bug locations").
func (c *Collector) UniqueLocations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	locs := map[ids.OpID]struct{}{}
	for key := range c.bugs {
		locs[key.A] = struct{}{}
		locs[key.B] = struct{}{}
	}
	return len(locs)
}

// TotalStackPairs sums distinct stack-trace pairs over all bugs.
func (c *Collector) TotalStackPairs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.bugs {
		n += b.StackPairs
	}
	return n
}

// Merge folds other's bugs into c (used to accumulate across runs).
func (c *Collector) Merge(other *Collector) {
	for _, v := range other.Violations() {
		c.Add(v)
	}
}
