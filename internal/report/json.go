package report

import (
	"encoding/json"
	"io"
)

// jsonBug is the stable wire form of a deduplicated bug, suitable for CI
// integration (the paper's deployment files these into the bug tracker).
type jsonBug struct {
	LocationA string `json:"location_a"`
	LocationB string `json:"location_b"`
	// SiteA/SiteB are the interned site ids the two accesses carried
	// (0 when the access had none). They are process-local handles; the
	// durable identity remains the location pair plus the class/method
	// strings resolved below.
	SiteA       uint64   `json:"site_a,omitempty"`
	SiteB       uint64   `json:"site_b,omitempty"`
	Class       string   `json:"class"`
	Methods     []string `json:"methods"`
	ReadWrite   bool     `json:"read_write"`
	SameLoc     bool     `json:"same_location"`
	Occurrences int      `json:"occurrences"`
	StackPairs  int      `json:"stack_pairs"`
	FirstSeenMS int64    `json:"first_seen_ms"`
	TrappedStk  string   `json:"trapped_stack,omitempty"`
	ConflictStk string   `json:"conflicting_stack,omitempty"`
}

// jsonReport wraps the full collector output.
type jsonReport struct {
	Tool       string    `json:"tool"`
	UniqueBugs int       `json:"unique_bugs"`
	Locations  int       `json:"unique_locations"`
	StackPairs int       `json:"stack_pairs"`
	Bugs       []jsonBug `json:"bugs"`
}

// WriteJSON renders the collector's deduplicated bugs as JSON. Stacks are
// included when withStacks is set (they dominate the payload size).
func (c *Collector) WriteJSON(w io.Writer, tool string, withStacks bool) error {
	bugs := c.Bugs()
	out := jsonReport{
		Tool:       tool,
		UniqueBugs: c.UniqueBugs(),
		Locations:  c.UniqueLocations(),
		StackPairs: c.TotalStackPairs(),
		Bugs:       make([]jsonBug, 0, len(bugs)),
	}
	for _, b := range bugs {
		v := b.First
		jb := jsonBug{
			LocationA: v.Trapped.Op.Location(),
			LocationB: v.Conflicting.Op.Location(),
			SiteA:     uint64(v.Trapped.Site),
			SiteB:     uint64(v.Conflicting.Site),
			Class:     v.Trapped.Class,
			Methods: []string{
				v.Trapped.Class + "." + v.Trapped.Method,
				v.Conflicting.Class + "." + v.Conflicting.Method,
			},
			ReadWrite:   v.ReadWrite(),
			SameLoc:     v.SameLocation(),
			Occurrences: b.Occurrences,
			StackPairs:  b.StackPairs,
			FirstSeenMS: v.When.Milliseconds(),
		}
		if withStacks {
			jb.TrappedStk = v.Trapped.Stack
			jb.ConflictStk = v.Conflicting.Stack
		}
		out.Bugs = append(out.Bugs, jb)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
