package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ids"
)

func mkViolation(op1, op2 ids.OpID, stack1, stack2 string) Violation {
	return Violation{
		Object: 7,
		Trapped: Side{
			Thread: 1, Op: op1, Write: true,
			Class: "Dictionary", Method: "Add", Stack: stack1,
		},
		Conflicting: Side{
			Thread: 2, Op: op2, Write: false,
			Class: "Dictionary", Method: "ContainsKey", Stack: stack2,
		},
	}
}

func TestKeyOfCanonical(t *testing.T) {
	if KeyOf(5, 3) != KeyOf(3, 5) {
		t.Fatal("KeyOf is not order-insensitive")
	}
	k := KeyOf(5, 3)
	if k.A != 3 || k.B != 5 {
		t.Fatalf("KeyOf(5,3) = %+v, want sorted", k)
	}
	if KeyOf(4, 4) != (PairKey{4, 4}) {
		t.Fatal("self-pair broken")
	}
}

func TestViolationPredicates(t *testing.T) {
	v := mkViolation(10, 20, "", "")
	if v.SameLocation() {
		t.Fatal("distinct locations reported same")
	}
	if !v.ReadWrite() {
		t.Fatal("write/read pair not detected as read-write")
	}
	same := mkViolation(10, 10, "", "")
	same.Conflicting.Write = true
	if !same.SameLocation() || same.ReadWrite() {
		t.Fatal("same-location write-write misclassified")
	}
	if v.Key() != KeyOf(10, 20) {
		t.Fatal("Key mismatch")
	}
}

func TestCollectorDedupByLocationPair(t *testing.T) {
	c := NewCollector()
	// The same bug manifests 3 times through 2 distinct stack pairs.
	c.Add(mkViolation(10, 20, "sA", "sB"))
	c.Add(mkViolation(10, 20, "sA", "sB"))
	c.Add(mkViolation(10, 20, "sC", "sD"))
	// Roles swapped: same two stacks, still the same stack pair.
	swapped := mkViolation(20, 10, "sB", "sA")
	c.Add(swapped)
	// A different bug.
	c.Add(mkViolation(10, 30, "x", "y"))

	if got := c.UniqueBugs(); got != 2 {
		t.Fatalf("UniqueBugs = %d, want 2", got)
	}
	if got := c.UniqueLocations(); got != 3 {
		t.Fatalf("UniqueLocations = %d, want 3 (10,20,30)", got)
	}
	bugs := c.Bugs()
	if len(bugs) != 2 {
		t.Fatalf("len(Bugs) = %d", len(bugs))
	}
	first := bugs[0] // sorted: (10,20) before (10,30)
	if first.Key != KeyOf(10, 20) {
		t.Fatalf("first bug key = %+v", first.Key)
	}
	if first.Occurrences != 4 {
		t.Fatalf("Occurrences = %d, want 4", first.Occurrences)
	}
	if first.StackPairs != 2 {
		t.Fatalf("StackPairs = %d, want 2 (role swap is the same pair)", first.StackPairs)
	}
	if got := c.TotalStackPairs(); got != 3 {
		t.Fatalf("TotalStackPairs = %d, want 3", got)
	}
	if got := len(c.Violations()); got != 5 {
		t.Fatalf("Violations = %d, want 5", got)
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(mkViolation(ids.OpID(g), ids.OpID(i%10), "a", "b"))
			}
		}(g)
	}
	wg.Wait()
	if got := len(c.Violations()); got != 800 {
		t.Fatalf("Violations = %d, want 800", got)
	}
}

func TestCollectorMerge(t *testing.T) {
	a := NewCollector()
	a.Add(mkViolation(1, 2, "s1", "s2"))
	b := NewCollector()
	b.Add(mkViolation(1, 2, "s3", "s4"))
	b.Add(mkViolation(3, 4, "s5", "s6"))
	a.Merge(b)
	if a.UniqueBugs() != 2 {
		t.Fatalf("UniqueBugs after merge = %d, want 2", a.UniqueBugs())
	}
	bugs := a.Bugs()
	if bugs[0].Occurrences != 2 || bugs[0].StackPairs != 2 {
		t.Fatalf("merged bug = %+v", bugs[0])
	}
}

func TestViolationString(t *testing.T) {
	v := mkViolation(10, 20, "stackLineA\nstackLineB", "stackLineC")
	s := v.String()
	for _, want := range []string{
		"thread-safety violation", "Dictionary.Add", "Dictionary.ContainsKey",
		"write", "read", "stackLineA", "stackLineC", "thread 1", "thread 2",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}
