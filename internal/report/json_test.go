package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	c := NewCollector()
	c.Add(mkViolation(10, 20, "stackA", "stackB"))
	c.Add(mkViolation(10, 20, "stackC", "stackD"))
	c.Add(mkViolation(30, 30, "stackE", "stackF"))

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf, "TSVD", true); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Tool       string `json:"tool"`
		UniqueBugs int    `json:"unique_bugs"`
		Locations  int    `json:"unique_locations"`
		Bugs       []struct {
			Class       string   `json:"class"`
			Methods     []string `json:"methods"`
			Occurrences int      `json:"occurrences"`
			StackPairs  int      `json:"stack_pairs"`
			ReadWrite   bool     `json:"read_write"`
			SameLoc     bool     `json:"same_location"`
			TrappedStk  string   `json:"trapped_stack"`
		} `json:"bugs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Tool != "TSVD" || got.UniqueBugs != 2 || got.Locations != 3 {
		t.Fatalf("header wrong: %+v", got)
	}
	if len(got.Bugs) != 2 {
		t.Fatalf("bugs = %d, want 2", len(got.Bugs))
	}
	first := got.Bugs[0] // sorted: (10,20) first
	if first.Occurrences != 2 || first.StackPairs != 2 {
		t.Fatalf("first bug counts wrong: %+v", first)
	}
	if !first.ReadWrite || first.SameLoc {
		t.Fatalf("first bug flags wrong: %+v", first)
	}
	if first.TrappedStk == "" {
		t.Fatal("stacks requested but absent")
	}
	if len(first.Methods) != 2 || !strings.Contains(first.Methods[0], "Dictionary.") {
		t.Fatalf("methods wrong: %v", first.Methods)
	}

	// Without stacks, the payload must omit them.
	buf.Reset()
	if err := c.WriteJSON(&buf, "TSVD", false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "stackA") {
		t.Fatal("stacks present despite withStacks=false")
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCollector().WriteJSON(&buf, "TSVD", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"unique_bugs": 0`) {
		t.Fatalf("empty report malformed:\n%s", buf.String())
	}
}
