package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// TraceSummary renders the aggregated per-location metrics table the way an
// engineer triaging a CI run reads it: the busiest locations first, each with
// its near-miss pressure, delay lifecycle (planned → set → slept →
// productive) and the reason pairs involving it left the trap set. maxRows
// bounds the table; <= 0 means every location.
func TraceSummary(w io.Writer, m *trace.Metrics, maxRows int) {
	fmt.Fprintf(w, "trace: %d events", m.Events)
	if m.Dropped > 0 {
		fmt.Fprintf(w, " (%d DROPPED — raise TraceBufferSize to reconcile)", m.Dropped)
	}
	fmt.Fprintln(w)
	for _, kind := range []trace.Kind{
		trace.KindNearMiss, trace.KindPairAdded, trace.KindDelayPlanned,
		trace.KindTrapSet, trace.KindDelayInjected, trace.KindDelayProductive,
		trace.KindTrapSprung, trace.KindHBEdge, trace.KindPairPrunedHB,
		trace.KindPairPrunedDecay,
	} {
		if n := m.ByKind[kind.String()]; n > 0 {
			fmt.Fprintf(w, "  %-18s %d\n", kind.String(), n)
		}
	}
	rows := m.Sorted()
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-40s %9s %9s %7s %7s %7s %6s %6s %7s\n",
		"location", "nearmiss", "gap(avg)", "planned", "delays", "product", "sprung", "hb-", "decay-")
	for _, lm := range rows {
		loc := lm.Loc
		if len(loc) > 40 {
			loc = "…" + loc[len(loc)-39:]
		}
		fmt.Fprintf(w, "  %-40s %9d %9s %7d %7d %7d %6d %6d %7d\n",
			loc, lm.NearMisses, shortDur(lm.AvgGap()), lm.DelaysPlanned,
			lm.DelaysInjected, lm.DelaysProductive, lm.TrapsSprung,
			lm.PrunedHB, lm.PrunedDecay)
	}
	if maxRows > 0 && len(m.PerLoc) > maxRows {
		fmt.Fprintf(w, "  … %d more locations (full table in metrics.json)\n",
			len(m.PerLoc)-maxRows)
	}
}

// shortDur renders a duration rounded to a readable precision for the table.
func shortDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
