// Package workload generates the synthetic module suites that stand in for
// the paper's proprietary Microsoft benchmarks (43K modules "Large", 1000
// sampled modules "Small" — §5.1). Each generated module is a small
// concurrent program with unit tests, built from blocks that reproduce the
// population properties the evaluation depends on:
//
//   - planted thread-safety violations with ground truth, spanning the
//     paper's bug taxonomy: hot-path bugs, single-occurrence bugs (caught
//     only with a trap file in run 2), rare-schedule bugs, marginal-timing
//     bugs (§5.3's delay-injection false negatives), and bugs shadowed by
//     over-eager HB inference (§5.3's HB-inference false negatives);
//   - safe near-misses: lock-protected conflicting accesses (exercising HB
//     inference), strictly alternating ad-hoc-synchronized accesses
//     (exercising decay), sequential phases (exercising phase detection)
//     and hot single-threaded loops (overhead soaks for the random
//     variants);
//   - the paper's class mix (Dictionary-heavy), read-write vs write-write
//     mix, same-location bugs, and async (task) vs raw-thread bugs.
//
// Everything is deterministic in the generator seed; per-run scheduling
// randomness comes from the run seed the harness passes in.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/task"
)

// BugKind classifies a planted bug by how hard the detector must work.
type BugKind string

const (
	// BugHot overlaps on almost every run: conflicting accesses loop
	// close together in time.
	BugHot BugKind = "hot"
	// BugAsync is a hot bug expressed through the task substrate's
	// async patterns (the Figure 3 cache idiom).
	BugAsync BugKind = "async"
	// BugCold executes each side exactly once per run: run 1 can only
	// learn the near miss, run 2 catches it via the trap file (§3.4.6).
	BugCold BugKind = "cold"
	// BugRare brings its sides close together only under rare schedules
	// (§5.3 near-miss false negatives).
	BugRare BugKind = "rare"
	// BugMarginal offsets its sides by roughly one delay length, so
	// whether the injected delay reaches the conflict is luck (§5.3
	// delay-injection false negatives).
	BugMarginal BugKind = "marginal"
	// BugNoise is a hot bug whose object also receives a burst of
	// unrelated same-thread accesses between the conflicting ones, so a
	// size-1 object history evicts the dangerous entry (Fig. 9b).
	BugNoise BugKind = "noise"
	// BugHBShadowed is ordered by ad-hoc synchronization during its first
	// iterations and truly concurrent afterwards; TSVD's HB inference
	// learns the early ordering and suppresses the pair for good (§5.3
	// HB-inference false negatives).
	BugHBShadowed BugKind = "hbshadowed"
)

// PlantedBug is ground truth for one violation the generator planted.
type PlantedBug struct {
	Pair  report.PairKey
	Kind  BugKind
	Class string
	// ReadWrite marks a read-vs-write conflict (vs write-write).
	ReadWrite bool
	// SameLocation marks both sides sharing one static location.
	SameLocation bool
	// Async marks bugs expressed through the task substrate.
	Async bool
}

// Test is one unit test of a module.
type Test struct {
	Name string
	// NominalUnits is the approximate uninstrumented duration in pace
	// units; the harness derives the test deadline from it.
	NominalUnits float64
	Body         func(env *Env)
}

// Module is one software module: a few unit tests plus ground truth.
type Module struct {
	Name  string
	Tests []Test
	Bugs  []PlantedBug
}

// Suite is a collection of modules, the unit the harness runs.
type Suite struct {
	Seed    int64
	Modules []*Module
}

// TotalPlantedBugs counts the ground-truth violations in the suite.
func (s *Suite) TotalPlantedBugs() int {
	n := 0
	for _, m := range s.Modules {
		n += len(m.Bugs)
	}
	return n
}

// PlantedPairs returns the ground-truth pair set.
func (s *Suite) PlantedPairs() map[report.PairKey]PlantedBug {
	out := map[report.PairKey]PlantedBug{}
	for _, m := range s.Modules {
		for _, b := range m.Bugs {
			out[b.Pair] = b
		}
	}
	return out
}

// BugsByKind tallies planted bugs per kind.
func (s *Suite) BugsByKind() map[BugKind]int {
	out := map[BugKind]int{}
	for _, m := range s.Modules {
		for _, b := range m.Bugs {
			out[b.Kind]++
		}
	}
	return out
}

// Env is the per-run execution environment the harness hands each test.
type Env struct {
	// Det receives the instrumented calls; nil runs uninstrumented.
	Det core.Detector
	// Sched runs the async (task-substrate) blocks; its fork/join events
	// reach Det.
	Sched *task.Scheduler
	// Rng drives per-run schedule randomness (rare bugs, marginal
	// offsets). It must only be used from the test's main goroutine.
	Rng *rand.Rand
	// Pace is the base time unit for workload sleeps.
	Pace time.Duration
	// Delay is the detector's configured injection length, which the
	// marginal and HB-shadowed blocks calibrate against.
	Delay time.Duration
	// Deadline emulates the unit-test timeout: loops stop when past it.
	Deadline time.Time
}

// sleep pauses for units pace units.
func (e *Env) sleep(units float64) {
	time.Sleep(time.Duration(units * float64(e.Pace)))
}

// expired reports whether the test's deadline has passed.
func (e *Env) expired() bool {
	return !e.Deadline.IsZero() && time.Now().After(e.Deadline)
}

// site is one generated static program location.
type site struct {
	op     ids.OpID
	kind   core.Kind
	class  string
	method string
}

// call reports the access and performs a small unit of work standing in for
// the container operation. It uses the native prologue — a per-call
// registry lookup resolving the interned SiteID — exactly as generated
// instrumentation would; legacy-shim equivalence is proven separately by
// internal/core's legacy-equivalence test, so the suite no longer routes
// its hot path through the deprecated string-keyed API.
func (e *Env) call(s site, obj ids.ObjectID) {
	if e.Det != nil {
		e.Det.OnCall(core.Access{
			Thread: ids.CurrentThreadID(),
			Obj:    obj,
			Op:     s.op,
			Site:   e.Det.Sites().ForCall(s.op, s.class, s.method, s.kind == core.KindWrite),
			Kind:   s.kind,
		})
	}
	busyWork()
}

// busyWork is a tiny CPU stand-in for the real container operation, sized
// well under a pace unit. The sink is atomic because every workload thread
// passes through here — the *containers* are the racy part of the model,
// not the busy-work.
func busyWork() {
	acc := int64(0)
	for i := int64(0); i < 32; i++ {
		acc += i * i
	}
	busySink.Store(acc)
}

var busySink atomic.Int64

// spawn runs fn on a fresh goroutine, returning a join channel. Raw
// goroutines model plain threads: no fork/join events reach the detector
// (TSVDHB cannot order them; TSVD does not care).
func spawn(fn func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	return done
}

// blockBuilder accumulates one module's content during generation.
type blockBuilder struct {
	moduleName string
	rng        *rand.Rand
	tests      []Test
	bugs       []PlantedBug
	siteSeq    int
}

func (b *blockBuilder) site(block string, kind core.Kind, class, method string) site {
	b.siteSeq++
	key := fmt.Sprintf("wl/%s/%s/site%d", b.moduleName, block, b.siteSeq)
	return site{op: ids.InternKey(key), kind: kind, class: class, method: method}
}

// conflictingSite flips a coin between a second write site and a read site
// (the paper's bug population is roughly half read-write, Table 1).
func (b *blockBuilder) conflictingSite(block, class string) site {
	if b.rng.Float64() < 0.5 {
		return b.site(block, core.KindRead, class, readMethod(class))
	}
	return b.site(block, core.KindWrite, class, writeMethod(class))
}

// pickClass draws a container class with the paper's distribution: 55%
// Dictionary, 37% List, 8% other (Table 1).
func (b *blockBuilder) pickClass() string {
	switch r := b.rng.Float64(); {
	case r < 0.55:
		return "Dictionary"
	case r < 0.92:
		return "List"
	default:
		others := []string{"HashSet", "Queue", "SortedDictionary", "Counter", "PriorityQueue", "SortedSet", "BitArray"}
		return others[b.rng.Intn(len(others))]
	}
}

// writeMethod / readMethod pick plausible API names for a class.
func writeMethod(class string) string {
	switch class {
	case "Dictionary", "SortedDictionary":
		return "Add"
	case "List":
		return "Add"
	case "HashSet":
		return "Add"
	case "Queue", "PriorityQueue":
		return "Enqueue"
	case "Counter":
		return "Increment"
	case "SortedSet":
		return "Add"
	case "BitArray":
		return "Set"
	default:
		return "Set"
	}
}

func readMethod(class string) string {
	switch class {
	case "Dictionary", "SortedDictionary":
		return "ContainsKey"
	case "List":
		return "Get"
	case "HashSet":
		return "Contains"
	case "Queue", "PriorityQueue":
		return "Peek"
	case "Counter":
		return "Value"
	case "SortedSet":
		return "Contains"
	case "BitArray":
		return "Get"
	default:
		return "Get"
	}
}
