package workload

import (
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/report"
	"repro/internal/syncx"
	"repro/internal/task"
)

// Each block builder appends one unit test and (optionally) ground-truth
// bugs to the module under construction. Blocks return their nominal
// uninstrumented duration in pace units.

// addHotBug plants an always-overlapping conflicting loop: the bread and
// butter of run-1 detection. A coin decides write-write vs read-write and
// whether both sides share one static location (Table 1's 34%).
func (b *blockBuilder) addHotBug() {
	class := b.pickClass()
	sameLoc := b.rng.Float64() < 0.34
	readWrite := !sameLoc && b.rng.Float64() < 0.49

	s1 := b.site("hot", core.KindWrite, class, writeMethod(class))
	s2 := s1
	if !sameLoc {
		k, m := core.KindWrite, writeMethod(class)
		if readWrite {
			k, m = core.KindRead, readMethod(class)
		}
		s2 = b.site("hot", k, class, m)
	}
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugHot, Class: class,
		ReadWrite: readWrite, SameLocation: sameLoc,
	})

	const iters = 12
	b.tests = append(b.tests, Test{
		Name:         "hot",
		NominalUnits: iters * 2.5,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			d1 := spawn(func() {
				for i := 0; i < iters && !env.expired(); i++ {
					env.call(s1, obj)
					env.sleep(1)
				}
			})
			d2 := spawn(func() {
				for i := 0; i < iters && !env.expired(); i++ {
					env.call(s2, obj)
					env.sleep(1)
				}
			})
			<-d1
			<-d2
		},
	})
}

// addNoiseBug is a hot write loop whose object also receives a burst of
// same-thread *read* accesses from other sites between the writes, plus a
// single racing read from the victim thread. The read noise conflicts with
// nothing, but it evicts the dangerous write from a too-small per-object
// history (Fig. 9b: N_nm = 1 "misses many bugs").
func (b *blockBuilder) addNoiseBug() {
	class := b.pickClass()
	s1 := b.site("noise", core.KindWrite, class, writeMethod(class))
	s2 := b.site("noise", core.KindRead, class, readMethod(class))
	noise := make([]site, 4)
	for i := range noise {
		noise[i] = b.site("noise", core.KindRead, class, readMethod(class))
	}
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugNoise, Class: class,
		ReadWrite: true,
	})

	const iters = 14
	b.tests = append(b.tests, Test{
		Name:         "noise",
		NominalUnits: iters + 4,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			d1 := spawn(func() {
				for i := 0; i < iters && !env.expired(); i++ {
					env.call(s1, obj)
					for _, n := range noise {
						env.call(n, obj)
					}
					env.sleep(1)
				}
			})
			d2 := spawn(func() {
				env.sleep(float64(iters) / 2) // land mid-loop
				env.call(s2, obj)             // the single racing read
			})
			<-d1
			<-d2
		},
	})
}

// addAsyncCacheBug is Figure 3: concurrent getSqrt tasks race a
// check-then-add on a shared cache dictionary. Both racy pairs of Figure 4
// are ground truth: the write-write same-location Add/Add pair and the
// read-write ContainsKey/Add pair.
func (b *blockBuilder) addAsyncCacheBug() {
	sContains := b.site("asynccache", core.KindRead, "Dictionary", "ContainsKey")
	sAdd := b.site("asynccache", core.KindWrite, "Dictionary", "Add")
	b.bugs = append(b.bugs,
		PlantedBug{
			Pair: report.KeyOf(sAdd.op, sAdd.op), Kind: BugAsync,
			Class: "Dictionary", SameLocation: true, Async: true,
		},
		PlantedBug{
			Pair: report.KeyOf(sContains.op, sAdd.op), Kind: BugAsync,
			Class: "Dictionary", ReadWrite: true, Async: true,
		},
	)

	const rounds = 6
	b.tests = append(b.tests, Test{
		Name:         "asynccache",
		NominalUnits: rounds * 3,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			getSqrt := func() *task.Task[struct{}] {
				return task.Run(env.Sched, func() struct{} {
					env.call(sContains, obj)
					env.sleep(0.5)
					env.call(sAdd, obj)
					return struct{}{}
				})
			}
			for r := 0; r < rounds && !env.expired(); r++ {
				a := getSqrt()
				c := getSqrt()
				a.Wait()
				c.Wait()
				env.sleep(0.5)
			}
		},
	})
}

// addColdBug executes each side exactly once, concurrently: run 1 learns
// the pair (near miss), run 2 traps the first occurrence (§3.4.6).
func (b *blockBuilder) addColdBug() {
	class := b.pickClass()
	s1 := b.site("cold", core.KindWrite, class, writeMethod(class))
	s2 := b.conflictingSite("cold", class)
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugCold, Class: class,
		ReadWrite: s2.kind == core.KindRead,
	})
	b.tests = append(b.tests, Test{
		Name:         "cold",
		NominalUnits: 4,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			d1 := spawn(func() {
				env.call(s1, obj) // executes exactly once per run
			})
			d2 := spawn(func() {
				env.sleep(0.3) // land just after s1 — near miss, no overlap
				env.call(s2, obj)
			})
			<-d1
			<-d2
		},
	})
}

// addRareBug keeps its sides far apart except under a rare schedule
// (probability ~0.15 per run), reproducing §5.3's near-miss false
// negatives: most runs produce no near miss at all.
func (b *blockBuilder) addRareBug() {
	class := b.pickClass()
	s1 := b.site("rare", core.KindWrite, class, writeMethod(class))
	s2 := b.conflictingSite("rare", class)
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugRare, Class: class,
		ReadWrite: s2.kind == core.KindRead,
	})
	b.tests = append(b.tests, Test{
		Name:         "rare",
		NominalUnits: 14,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			rare := env.Rng.Float64() < 0.15
			if rare {
				// The rare schedule: a short hot burst.
				d1 := spawn(func() {
					for i := 0; i < 6 && !env.expired(); i++ {
						env.call(s1, obj)
						env.sleep(1)
					}
				})
				d2 := spawn(func() {
					for i := 0; i < 6 && !env.expired(); i++ {
						env.call(s2, obj)
						env.sleep(1)
					}
				})
				<-d1
				<-d2
				return
			}
			// The common schedule: a long gap between the sides (e.g. a
			// resource use and its de-allocation) — no near miss.
			d1 := spawn(func() { env.call(s1, obj) })
			<-d1
			env.sleep(10) // several near-miss windows
			d2 := spawn(func() { env.call(s2, obj) })
			<-d2
		},
	})
}

// addMarginalBug offsets its sides by 0.5–1.5 delay lengths each run:
// when the offset exceeds the injected delay, the trap expires before the
// partner arrives (§5.3's delay-injection false negatives). Longer delays
// (Fig. 9h) convert more of these runs into catches.
func (b *blockBuilder) addMarginalBug() {
	class := b.pickClass()
	s1 := b.site("marginal", core.KindWrite, class, writeMethod(class))
	s2 := b.conflictingSite("marginal", class)
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugMarginal, Class: class,
		ReadWrite: s2.kind == core.KindRead,
	})
	// sWarm is side B's private busy-work site: it keeps B's inter-access
	// gaps well under δ_hb·delay so the offset is never misattributed to
	// an injected delay (that would be an HB-inference false negative, a
	// different category).
	sWarm := b.site("marginal", core.KindWrite, class, writeMethod(class))
	const iters = 8
	b.tests = append(b.tests, Test{
		Name:         "marginal",
		NominalUnits: 24,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			objWarm := ids.NewObjectID() // private to B
			offset := time.Duration((0.5 + env.Rng.Float64()) * float64(env.Delay))
			period := offset + 2*env.Pace
			d1 := spawn(func() {
				for i := 0; i < iters && !env.expired(); i++ {
					env.call(s1, obj)
					time.Sleep(period)
				}
			})
			d2 := spawn(func() {
				for i := 0; i < iters && !env.expired(); i++ {
					// Busy warm-up spanning the offset in short hops.
					for w := 0; w < 4; w++ {
						time.Sleep(offset / 4)
						env.call(sWarm, objWarm)
					}
					env.call(s2, obj) // lands ~offset after s1
					time.Sleep(2 * env.Pace)
				}
			})
			<-d1
			<-d2
		},
	})
}

// addHBShadowedBug is ordered by ad-hoc (unmonitored) synchronization for
// its first iterations — any delay at s1 visibly stalls s2, so TSVD infers
// HB and permanently suppresses the pair — and truly concurrent afterwards,
// when the suppressed bug strikes unseen (§5.3's HB-inference false
// negatives).
func (b *blockBuilder) addHBShadowedBug() {
	class := b.pickClass()
	s1 := b.site("hbshadow", core.KindWrite, class, writeMethod(class))
	s2 := b.site("hbshadow", core.KindWrite, class, writeMethod(class))
	b.bugs = append(b.bugs, PlantedBug{
		Pair: report.KeyOf(s1.op, s2.op), Kind: BugHBShadowed, Class: class,
	})
	b.tests = append(b.tests, Test{
		Name:         "hbshadow",
		NominalUnits: 22,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			baton := make(chan struct{}, 1)
			// Phase 1: strict ad-hoc ordering s1 → s2, invisible to the
			// detector (plain channel).
			const ordered = 5
			d1 := spawn(func() {
				for i := 0; i < ordered && !env.expired(); i++ {
					env.call(s1, obj)
					baton <- struct{}{}
					env.sleep(0.5)
				}
			})
			d2 := spawn(func() {
				for i := 0; i < ordered && !env.expired(); i++ {
					<-baton
					env.call(s2, obj)
				}
			})
			<-d1
			<-d2
			// Phase 2: the same sites race for real — briefly.
			e1 := spawn(func() {
				for i := 0; i < 4 && !env.expired(); i++ {
					env.call(s1, obj)
					env.sleep(1)
				}
			})
			e2 := spawn(func() {
				for i := 0; i < 4 && !env.expired(); i++ {
					env.call(s2, obj)
					env.sleep(1)
				}
			})
			<-e1
			<-e2
		},
	})
}

// addSafeLocked protects conflicting accesses with a monitored mutex: a
// stream of near misses that can never overlap. TSVD must learn the HB
// relationship from its own delays; TSVDHB sees the lock directly.
func (b *blockBuilder) addSafeLocked() {
	class := b.pickClass()
	s1 := b.site("safelock", core.KindWrite, class, writeMethod(class))
	s2 := b.site("safelock", core.KindWrite, class, writeMethod(class))
	const iters = 10
	b.tests = append(b.tests, Test{
		Name:         "safelock",
		NominalUnits: iters * 2.5,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			mu := syncx.NewMutex(env.Det)
			worker := func(s site) chan struct{} {
				return spawn(func() {
					for i := 0; i < iters && !env.expired(); i++ {
						mu.Lock()
						env.call(s, obj)
						mu.Unlock()
						env.sleep(1)
					}
				})
			}
			d1 := worker(s1)
			d2 := worker(s2)
			<-d1
			<-d2
		},
	})
}

// addPingPongSafe alternates two threads through unmonitored channels —
// near misses every iteration, never concurrent. TSVD's wasted delays must
// decay away; TSVDHB accumulates spurious pairs (it cannot see the
// channels).
func (b *blockBuilder) addPingPongSafe() {
	class := b.pickClass()
	s1 := b.site("pingpong", core.KindWrite, class, writeMethod(class))
	s2 := b.site("pingpong", core.KindWrite, class, writeMethod(class))
	const iters = 10
	b.tests = append(b.tests, Test{
		Name:         "pingpong",
		NominalUnits: iters * 1.2,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			ping := make(chan struct{})
			pong := make(chan struct{})
			d1 := spawn(func() {
				for i := 0; i < iters; i++ {
					env.call(s1, obj)
					ping <- struct{}{}
					<-pong
				}
			})
			d2 := spawn(func() {
				for i := 0; i < iters; i++ {
					<-ping
					env.call(s2, obj)
					pong <- struct{}{}
				}
			})
			<-d1
			<-d2
		},
	})
}

// addSequentialPhase writes from the main thread (initialization), then
// reads concurrently through tasks: no violation is possible, and the
// phase buffer keeps TSVD from pairing the init writes with anything.
func (b *blockBuilder) addSequentialPhase() {
	class := b.pickClass()
	sInit := b.site("seqphase", core.KindWrite, class, writeMethod(class))
	sRead := b.site("seqphase", core.KindRead, class, readMethod(class))
	b.tests = append(b.tests, Test{
		Name:         "seqphase",
		NominalUnits: 14,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			for i := 0; i < 120 && !env.expired(); i++ {
				env.call(sInit, obj) // init phase: single thread, hot
			}
			reader := func() *task.Task[struct{}] {
				return task.Run(env.Sched, func() struct{} {
					for i := 0; i < 8 && !env.expired(); i++ {
						env.call(sRead, obj)
						env.sleep(0.5)
					}
					return struct{}{}
				})
			}
			r1, r2 := reader(), reader()
			r1.Wait()
			r2.Wait()
		},
	})
}

// addTaskStorm models the async-heavy programs of §2.3: many short tasks
// created and joined, each touching a private object once or twice. There
// is nothing to find — the block exists so that synchronization operations
// rival data accesses in volume, which is the population TSVDHB must pay
// vector-clock work for while TSVD's hooks stay no-ops.
func (b *blockBuilder) addTaskStorm() {
	class := b.pickClass()
	sW := b.site("taskstorm", core.KindWrite, class, writeMethod(class))
	sR := b.site("taskstorm", core.KindRead, class, readMethod(class))
	const tasks = 40
	b.tests = append(b.tests, Test{
		Name:         "taskstorm",
		NominalUnits: 6,
		Body: func(env *Env) {
			handles := make([]*task.Task[struct{}], tasks)
			for i := range handles {
				handles[i] = task.Run(env.Sched, func() struct{} {
					obj := ids.NewObjectID() // private: no conflicts
					env.call(sW, obj)
					env.call(sR, obj)
					return struct{}{}
				})
			}
			for _, h := range handles {
				h.Wait()
			}
		},
	})
}

// addHotSafeLoop hammers a private object from one thread: pure overhead
// soak for techniques that inject delays indiscriminately.
func (b *blockBuilder) addHotSafeLoop() {
	class := b.pickClass()
	s := b.site("hotsafe", core.KindWrite, class, writeMethod(class))
	b.tests = append(b.tests, Test{
		Name:         "hotsafe",
		NominalUnits: 4,
		Body: func(env *Env) {
			obj := ids.NewObjectID()
			// A genuinely hot sequential path: hundreds of tightly
			// spaced TSVD points. Per-call random injection drowns
			// here; TSVD never plans a delay (no dangerous pair).
			for i := 0; i < 300 && !env.expired(); i++ {
				env.call(s, obj)
			}
		},
	})
}
