package workload

import (
	"strings"
	"testing"
)

func TestGenerateSuiteDeterministic(t *testing.T) {
	a := GenerateSuite(7, 30)
	b := GenerateSuite(7, 30)
	if len(a.Modules) != 30 || len(b.Modules) != 30 {
		t.Fatalf("module counts: %d, %d", len(a.Modules), len(b.Modules))
	}
	if a.TotalPlantedBugs() != b.TotalPlantedBugs() {
		t.Fatal("same seed produced different bug counts")
	}
	for i := range a.Modules {
		ma, mb := a.Modules[i], b.Modules[i]
		if ma.Name != mb.Name || len(ma.Tests) != len(mb.Tests) || len(ma.Bugs) != len(mb.Bugs) {
			t.Fatalf("module %d differs between generations", i)
		}
		for j := range ma.Bugs {
			if ma.Bugs[j] != mb.Bugs[j] {
				t.Fatalf("module %d bug %d differs", i, j)
			}
		}
	}
}

func TestGenerateSuiteDifferentSeedsDiffer(t *testing.T) {
	a := GenerateSuite(1, 50)
	b := GenerateSuite(2, 50)
	if a.TotalPlantedBugs() == b.TotalPlantedBugs() {
		// Counts can collide; require the pair sets to differ.
		pa, pb := a.PlantedPairs(), b.PlantedPairs()
		same := true
		for k := range pa {
			if _, ok := pb[k]; !ok {
				same = false
				break
			}
		}
		if same && len(pa) == len(pb) {
			t.Fatal("different seeds produced identical ground truth")
		}
	}
}

func TestSuitePopulationProperties(t *testing.T) {
	s := GenerateSuite(11, 300)
	total := s.TotalPlantedBugs()
	if total < 40 {
		t.Fatalf("only %d planted bugs in 300 modules; generator too stingy", total)
	}
	kinds := s.BugsByKind()
	for _, k := range []BugKind{BugHot, BugAsync, BugCold, BugRare, BugMarginal, BugNoise} {
		if kinds[k] == 0 {
			t.Errorf("no %s bugs in a 300-module suite", k)
		}
	}
	// Class mix: Dictionary must dominate (Table 1: 55%).
	classes := map[string]int{}
	sameLoc, readWrite, async := 0, 0, 0
	for _, m := range s.Modules {
		for _, b := range m.Bugs {
			classes[b.Class]++
			if b.SameLocation {
				sameLoc++
			}
			if b.ReadWrite {
				readWrite++
			}
			if b.Async {
				async++
			}
		}
	}
	if classes["Dictionary"] <= classes["List"] {
		t.Errorf("class mix off: %v", classes)
	}
	if sameLoc == 0 || readWrite == 0 || async == 0 {
		t.Errorf("population missing a category: sameLoc=%d readWrite=%d async=%d",
			sameLoc, readWrite, async)
	}
	// Ground-truth pairs must be unique across the suite.
	if len(s.PlantedPairs()) != total {
		t.Errorf("planted pairs collide: %d pairs for %d bugs", len(s.PlantedPairs()), total)
	}
}

func TestModuleTestsHaveNominalUnits(t *testing.T) {
	s := GenerateSuite(3, 50)
	for _, m := range s.Modules {
		if len(m.Tests) == 0 {
			t.Fatalf("module %s has no tests", m.Name)
		}
		for _, test := range m.Tests {
			if test.NominalUnits <= 0 {
				t.Fatalf("test %s/%s has no nominal duration", m.Name, test.Name)
			}
			if test.Body == nil {
				t.Fatalf("test %s/%s has no body", m.Name, test.Name)
			}
		}
	}
}

func TestSiteKeysNamespacedPerModule(t *testing.T) {
	s := GenerateSuite(5, 10)
	seen := map[string]bool{}
	for _, m := range s.Modules {
		for _, b := range m.Bugs {
			key := b.Pair.A.Key()
			if key == "" {
				t.Fatalf("planted site has no persistent key")
			}
			if !strings.HasPrefix(key, "wl/") {
				t.Fatalf("unexpected site key %q", key)
			}
			if !strings.Contains(key, m.Name) {
				t.Fatalf("site key %q not namespaced to module %s", key, m.Name)
			}
		}
		if seen[m.Name] {
			t.Fatalf("duplicate module name %s", m.Name)
		}
		seen[m.Name] = true
	}
}
