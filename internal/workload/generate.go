package workload

import (
	"fmt"
	"math/rand"
)

// GenerateSuite builds a deterministic n-module suite from seed. Roughly
// 30% of modules carry at least one planted bug (weighted toward hot bugs,
// with every §5.3 false-negative category represented); the rest are
// bug-free but full of near misses, sequential phases and hot loops, so
// detectors pay for their mistakes.
func GenerateSuite(seed int64, n int) *Suite {
	s := &Suite{Seed: seed, Modules: make([]*Module, 0, n)}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.Modules = append(s.Modules, generateModule(fmt.Sprintf("s%d-m%04d", seed, i), rng))
	}
	return s
}

// SmallSuite mirrors the paper's 1000-module sample at harness scale.
func SmallSuite(seed int64) *Suite { return GenerateSuite(seed, 100) }

// LargeSuite mirrors the 43K-module Large benchmark at harness scale.
func LargeSuite(seed int64) *Suite { return GenerateSuite(seed, 600) }

func generateModule(name string, rng *rand.Rand) *Module {
	b := &blockBuilder{moduleName: name, rng: rng}

	// Every module gets 1–3 safe blocks: ordinary concurrent code. Most
	// safe code never produces conflicting near misses (hot loops,
	// sequential phases); lock-protected and ad-hoc-ordered near-missing
	// blocks are the minority, as in real modules — they are what
	// separates TSVD's selective injection from the random baselines.
	nSafe := 1 + rng.Intn(3)
	for i := 0; i < nSafe; i++ {
		switch r := rng.Float64(); {
		case r < 0.30:
			b.addHotSafeLoop()
		case r < 0.50:
			b.addSequentialPhase()
		case r < 0.75:
			b.addTaskStorm()
		case r < 0.88:
			b.addSafeLocked()
		default:
			b.addPingPongSafe()
		}
	}

	// ~30% of modules carry one planted bug; a few carry two.
	nBugs := 0
	switch r := rng.Float64(); {
	case r < 0.05:
		nBugs = 2
	case r < 0.30:
		nBugs = 1
	}
	for i := 0; i < nBugs; i++ {
		switch r := rng.Float64(); {
		case r < 0.28:
			b.addHotBug()
		case r < 0.60: // async-heavy, as in the paper (70% of bugs, Table 1)
			b.addAsyncCacheBug()
		case r < 0.72:
			b.addColdBug()
		case r < 0.82:
			b.addRareBug()
		case r < 0.90:
			b.addMarginalBug()
		case r < 0.96:
			b.addNoiseBug()
		default:
			b.addHBShadowedBug()
		}
	}

	// Shuffle test order so bug tests are not always last.
	rng.Shuffle(len(b.tests), func(i, j int) {
		b.tests[i], b.tests[j] = b.tests[j], b.tests[i]
	})
	return &Module{Name: name, Tests: b.tests, Bugs: b.bugs}
}
